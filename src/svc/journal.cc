#include "svc/journal.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/json.hh"
#include "common/schema_versions.hh"
#include "svc/manifest.hh"

namespace sbrp
{

namespace
{

bool
fail(std::string *err, const std::string &msg)
{
    if (err)
        *err = "shard journal: " + msg;
    return false;
}

std::string
errnoText()
{
    return std::strerror(errno);
}

JsonValue
headerJson(const ShardJournalHeader &h)
{
    JsonValue o = JsonValue::object();
    o.set("kind", JsonValue(std::string("shard-journal")));
    o.set("schema_version", JsonValue(std::uint64_t{h.schemaVersion}));
    o.set("shard", JsonValue(std::uint64_t{h.shard}));
    o.set("shards", JsonValue(std::uint64_t{h.shards}));
    o.set("begin", JsonValue(h.begin));
    o.set("end", JsonValue(h.end));
    o.set("manifest_digest", JsonValue(h.manifestDigest));
    o.set("app", JsonValue(h.app));
    return o;
}

bool
headerFromJson(const JsonValue &v, ShardJournalHeader *out,
               std::string *err)
{
    if (!v.isObject())
        return fail(err, "header is not an object");
    const JsonValue *f = v.find("kind");
    if (!f || !f->isString() || f->asString() != "shard-journal")
        return fail(err, "header has missing or wrong 'kind'");
    struct U64Field
    {
        const char *key;
        std::uint64_t *dst;
    };
    std::uint64_t schema = 0, shard = 0, shards = 0;
    ShardJournalHeader h;
    for (U64Field uf : {U64Field{"schema_version", &schema},
                        U64Field{"shard", &shard},
                        U64Field{"shards", &shards},
                        U64Field{"begin", &h.begin},
                        U64Field{"end", &h.end}}) {
        f = v.find(uf.key);
        if (!f || !f->isNumber())
            return fail(err, std::string("header: missing '") + uf.key +
                             "'");
        *uf.dst = f->asU64();
    }
    if (schema != schema::kShardJournal)
        return fail(err, "unsupported header schema_version");
    h.schemaVersion = static_cast<std::uint32_t>(schema);
    h.shard = static_cast<std::uint32_t>(shard);
    h.shards = static_cast<std::uint32_t>(shards);
    f = v.find("manifest_digest");
    if (!f || !f->isString())
        return fail(err, "header: missing 'manifest_digest'");
    h.manifestDigest = f->asString();
    f = v.find("app");
    if (!f || !f->isString())
        return fail(err, "header: missing 'app'");
    h.app = f->asString();
    *out = h;
    return true;
}

} // namespace

JsonValue
shardRecordJson(const ShardJournalRecord &r)
{
    JsonValue o = JsonValue::object();
    o.set("index", JsonValue(r.index));
    o.set("crash_cycle", JsonValue(r.verdict.crashAt));
    o.set("event_kind",
          JsonValue(std::string(toString(r.verdict.kind))));
    o.set("crashed", JsonValue(r.verdict.crashed));
    o.set("pmo_violations", JsonValue(r.verdict.pmoViolations));
    o.set("recovered_ok", JsonValue(r.verdict.recoveredOk));
    o.set("persist_faults", JsonValue(r.verdict.persistFaults));
    JsonValue ledger = JsonValue::array();
    for (std::uint64_t c : r.verdict.ledgerCycles)
        ledger.push(JsonValue(c));
    o.set("ledger_cycles", std::move(ledger));
    o.set("ledger_warp_active", JsonValue(r.verdict.ledgerWarpActive));
    o.set("wall_us", JsonValue(r.verdict.wallUs));
    return o;
}

bool
shardRecordFromJson(const JsonValue &v, ShardJournalRecord *out,
                    std::string *err)
{
    if (!v.isObject())
        return fail(err, "record is not an object");
    ShardJournalRecord r;
    r.verdict.executed = true;
    struct U64Field
    {
        const char *key;
        std::uint64_t *dst;
    };
    for (U64Field uf :
            {U64Field{"index", &r.index},
             U64Field{"crash_cycle", &r.verdict.crashAt},
             U64Field{"pmo_violations", &r.verdict.pmoViolations},
             U64Field{"persist_faults", &r.verdict.persistFaults},
             U64Field{"ledger_warp_active",
                      &r.verdict.ledgerWarpActive}}) {
        const JsonValue *f = v.find(uf.key);
        if (!f || !f->isNumber())
            return fail(err, std::string("record: missing '") + uf.key +
                             "'");
        *uf.dst = f->asU64();
    }
    const JsonValue *f = v.find("event_kind");
    if (!f || !f->isString() ||
            !crashEventKindFromString(f->asString(), &r.verdict.kind))
        return fail(err, "record: bad 'event_kind'");
    struct BoolField
    {
        const char *key;
        bool *dst;
    };
    for (BoolField bf :
            {BoolField{"crashed", &r.verdict.crashed},
             BoolField{"recovered_ok", &r.verdict.recoveredOk}}) {
        f = v.find(bf.key);
        if (!f || !f->isBool())
            return fail(err, std::string("record: missing '") + bf.key +
                             "'");
        *bf.dst = f->asBool();
    }
    f = v.find("ledger_cycles");
    if (!f || !f->isArray() ||
            f->items().size() != r.verdict.ledgerCycles.size())
        return fail(err, "record: 'ledger_cycles' must hold one entry "
                         "per cycle category");
    for (std::size_t i = 0; i < f->items().size(); ++i) {
        if (!f->items()[i].isNumber())
            return fail(err, "record: non-numeric ledger cycle");
        r.verdict.ledgerCycles[i] = f->items()[i].asU64();
    }
    f = v.find("wall_us");
    if (!f || !f->isNumber())
        return fail(err, "record: missing 'wall_us'");
    r.verdict.wallUs = f->asNumber();
    *out = r;
    return true;
}

JournalLoad
loadShardJournal(const std::string &path, const CampaignManifest *manifest,
                 std::uint32_t expect_shard, ShardJournalContents *out,
                 std::string *err)
{
    *out = ShardJournalContents{};

    std::string text;
    {
        int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0) {
            if (errno == ENOENT)
                return JournalLoad::Missing;
            fail(err, "cannot open '" + path + "': " + errnoText());
            return JournalLoad::Corrupt;
        }
        char buf[1 << 16];
        ssize_t n;
        while ((n = ::read(fd, buf, sizeof(buf))) != 0) {
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                ::close(fd);
                fail(err, "read '" + path + "': " + errnoText());
                return JournalLoad::Corrupt;
            }
            text.append(buf, static_cast<std::size_t>(n));
        }
        ::close(fd);
    }
    if (text.empty())
        return JournalLoad::Missing;

    // Split into lines, remembering where each line starts so a resume
    // can truncate exactly at the end of the last good one.
    struct Line
    {
        std::size_t begin;
        std::size_t end;        ///< Exclusive, without the newline.
        bool terminated;
    };
    std::vector<Line> lines;
    std::size_t at = 0;
    while (at < text.size()) {
        std::size_t nl = text.find('\n', at);
        if (nl == std::string::npos) {
            lines.push_back({at, text.size(), false});
            break;
        }
        lines.push_back({at, nl, true});
        at = nl + 1;
    }

    bool header_ok = false;
    std::uint64_t next_valid = 0;
    std::string parse_err;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const Line &ln = lines[i];
        const bool last = i + 1 == lines.size();
        const std::string body = text.substr(ln.begin,
                                             ln.end - ln.begin);
        JsonValue v = JsonValue::parse(body, &parse_err);
        const bool parsed = !v.isNull();
        bool ok = parsed;
        std::string why = ok ? "" : parse_err;

        ShardJournalRecord rec;
        if (ok && !header_ok) {
            ok = headerFromJson(v, &out->header, &why);
            if (ok && manifest) {
                if (out->header.manifestDigest != manifest->digest) {
                    ok = false;
                    why = "journal was written against a different "
                          "manifest (digest mismatch)";
                } else if (out->header.shards != manifest->shards ||
                           out->header.shard >= manifest->shards) {
                    ok = false;
                    why = "journal shard layout disagrees with the "
                          "manifest";
                } else {
                    const ShardRange &r =
                        manifest->ranges[out->header.shard];
                    if (out->header.begin != r.begin ||
                            out->header.end != r.end) {
                        ok = false;
                        why = "journal index range disagrees with the "
                              "manifest";
                    }
                }
            }
            if (ok && expect_shard != ~std::uint32_t{0} &&
                    out->header.shard != expect_shard) {
                ok = false;
                why = "journal belongs to a different shard";
            }
            if (ok)
                header_ok = true;
        } else if (ok) {
            ok = shardRecordFromJson(v, &rec, &why);
            if (ok && (rec.index < out->header.begin ||
                       rec.index >= out->header.end)) {
                ok = false;
                why = "record index outside the shard's range";
            }
            if (ok && manifest) {
                const CrashPoint &p =
                    manifest->probe.points.points[rec.index];
                if (rec.verdict.crashAt != p.cycle ||
                        rec.verdict.kind != p.kind) {
                    ok = false;
                    why = "record crash point disagrees with the "
                          "manifest";
                }
            }
            if (ok) {
                // Idempotent duplicates (same index, same bytes) are a
                // legal crash signature; conflicting ones are not.
                bool dup = false;
                for (const ShardJournalRecord &prev : out->records) {
                    if (prev.index != rec.index)
                        continue;
                    dup = true;
                    if (shardRecordJson(prev).dump(0) !=
                            shardRecordJson(rec).dump(0)) {
                        ok = false;
                        why = "conflicting duplicate record for index " +
                              std::to_string(rec.index);
                    }
                    break;
                }
                if (ok && !dup)
                    out->records.push_back(rec);
            }
        }

        if (!ok) {
            // The torn-tail allowance: a crashed writer can leave at
            // most one damaged line, only at the very end, and a torn
            // write never parses as JSON (the record object cannot
            // close early). A final line that *parses* but is wrong —
            // foreign manifest, conflicting duplicate — was not torn;
            // it is corruption and is refused like any other.
            if (last && !parsed) {
                out->tornTail = true;
                break;
            }
            fail(err, why + " (line " + std::to_string(i + 1) + " of '" +
                      path + "')");
            return JournalLoad::Corrupt;
        }
        next_valid = ln.end + (ln.terminated ? 1 : 0);
    }

    out->validBytes = next_valid;
    if (!header_ok) {
        // Nothing durable beyond (at most) a torn header: the journal
        // never acknowledged any work, so treat it as absent.
        return JournalLoad::Missing;
    }
    return JournalLoad::Ok;
}

ShardJournalWriter::~ShardJournalWriter()
{
    close();
}

void
ShardJournalWriter::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
ShardJournalWriter::writeLine(const std::string &line, std::string *err)
{
    std::size_t off = 0;
    while (off < line.size()) {
        ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return fail(err, "write '" + path_ + "': " + errnoText());
        }
        off += static_cast<std::size_t>(n);
    }
    if (::fsync(fd_) != 0)
        return fail(err, "fsync '" + path_ + "': " + errnoText());
    return true;
}

bool
ShardJournalWriter::create(const std::string &path,
                           const ShardJournalHeader &h, std::string *err)
{
    close();
    path_ = path;
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd_ < 0)
        return fail(err, "cannot create '" + path + "': " + errnoText());
    return writeLine(headerJson(h).dump(0) + "\n", err);
}

bool
ShardJournalWriter::resume(const std::string &path,
                           std::uint64_t valid_bytes, std::string *err)
{
    close();
    path_ = path;
    fd_ = ::open(path.c_str(), O_WRONLY, 0644);
    if (fd_ < 0)
        return fail(err, "cannot reopen '" + path + "': " + errnoText());
    // Drop the torn tail (if any) so the next record starts on a clean
    // line boundary instead of splicing onto partial bytes.
    if (::ftruncate(fd_, static_cast<off_t>(valid_bytes)) != 0)
        return fail(err, "truncate '" + path + "': " + errnoText());
    if (::lseek(fd_, 0, SEEK_END) < 0)
        return fail(err, "seek '" + path + "': " + errnoText());
    return true;
}

bool
ShardJournalWriter::append(const ShardJournalRecord &r, std::string *err)
{
    if (fd_ < 0)
        return fail(err, "append on a closed journal");
    return writeLine(shardRecordJson(r).dump(0) + "\n", err);
}

std::string
shardJournalPath(const std::string &dir, std::uint32_t shard)
{
    std::string d = dir;
    if (!d.empty() && d.back() != '/')
        d += '/';
    return d + "shard-" + std::to_string(shard) + ".journal";
}

bool
ensureDirectories(const std::string &dir, std::string *err)
{
    std::size_t pos = 0;
    while (pos <= dir.size()) {
        std::size_t slash = dir.find('/', pos);
        if (slash == std::string::npos)
            slash = dir.size();
        const std::string at = dir.substr(0, slash);
        pos = slash + 1;
        if (at.empty() || at == ".")
            continue;
        if (::mkdir(at.c_str(), 0755) != 0 && errno != EEXIST) {
            if (err)
                *err = "cannot create directory '" + at + "': " +
                       errnoText();
            return false;
        }
    }
    return true;
}

} // namespace sbrp
