/**
 * @file
 * The deterministic shard merger: folds per-shard verdict journals back
 * into one campaign result.
 *
 * Merging rebuilds the exact CampaignResult a single-process engine
 * would have produced — same probe (from the manifest), same verdict
 * vector (journal records placed by global index), same tally,
 * minimization and report phases (the shared campaign free functions) —
 * so the schema-v4 report's deterministic body is byte-identical to an
 * unsharded run's. Only the `execution` section, which comparators
 * strip, records that the verdicts arrived via shards.
 *
 * Graceful degradation, not silence: a shard whose journal is missing
 * or short leaves its indices unexecuted and is listed in
 * `incomplete_shards`; the report still tallies every verdict that *is*
 * durable. A corrupt journal, by contrast, poisons the merge — the
 * merger refuses (exit-2 material) rather than fold untrustworthy
 * verdicts into a report that claims authority.
 */

#ifndef SBRP_SVC_MERGE_HH
#define SBRP_SVC_MERGE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "crashtest/campaign.hh"

namespace sbrp
{

struct CampaignManifest;

/** Per-shard accounting of what the merge found. */
struct ShardMergeInfo
{
    std::uint32_t shard = 0;
    std::uint64_t expected = 0;   ///< Range size per the manifest.
    std::uint64_t found = 0;      ///< Verdicts recovered from journal.
    bool journalPresent = false;
    bool complete = false;        ///< found == expected.
};

struct MergeOutcome
{
    CampaignConfig cfg;       ///< Reconstructed from the manifest.
    CampaignResult result;    ///< As a single-process engine would fill.
    CampaignExecutionInfo exec;   ///< mode "merged" + shard accounting.
    std::vector<ShardMergeInfo> shards;
    bool complete = false;    ///< Every shard complete.
};

/**
 * Loads every shard journal under `journal_dir`, validates each against
 * the manifest, and rebuilds the campaign result (including the
 * minimization re-run when failures exist and the manifest asked for
 * it). Returns false with *err only on corruption or I/O failure —
 * missing/short journals degrade to an incomplete merge instead.
 */
bool mergeShardJournals(const CampaignManifest &manifest,
                        const std::string &journal_dir,
                        MergeOutcome *out, std::string *err);

} // namespace sbrp

#endif // SBRP_SVC_MERGE_HH
