#include "svc/supervisor.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/log.hh"
#include "svc/heartbeat.hh"
#include "svc/journal.hh"
#include "svc/manifest.hh"

namespace sbrp
{

namespace
{

using SteadyClock = std::chrono::steady_clock;

std::uint64_t
msSince(SteadyClock::time_point t)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            SteadyClock::now() - t).count());
}

/** Journal size as the progress signal; 0 when absent. */
std::uint64_t
journalSize(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return 0;
    return static_cast<std::uint64_t>(st.st_size);
}

struct ShardProc
{
    enum class State : std::uint8_t
    {
        Pending,    ///< Waiting to (re)spawn.
        Running,
        Complete,
        Incomplete,
        Stopped,
    };

    std::uint32_t shard = 0;
    State state = State::Pending;
    pid_t pid = -1;
    std::uint32_t spawns = 0;
    SteadyClock::time_point nextSpawnAt = SteadyClock::now();
    SteadyClock::time_point lastProgressAt;
    std::uint64_t lastJournalBytes = 0;
    bool timedOut = false;       ///< This attempt was SIGKILLed by us.
    std::string lastFailure;

    bool
    finished() const
    {
        return state == State::Complete || state == State::Incomplete ||
               state == State::Stopped;
    }
};

pid_t
spawnWorker(const SupervisorOptions &opts, std::uint32_t shard)
{
    std::vector<std::string> args = {
        opts.selfExe,
        "--manifest", opts.manifestPath,
        "--shard-index", std::to_string(shard),
        "--journal", opts.journalDir,
        "--resume",
    };
    if (opts.throttleMs != 0) {
        args.push_back("--throttle-ms");
        args.push_back(std::to_string(opts.throttleMs));
    }
    if (opts.heartbeatMs != 0) {
        args.push_back("--heartbeat-ms");
        args.push_back(std::to_string(opts.heartbeatMs));
    }

    pid_t pid = ::fork();
    if (pid < 0)
        return -1;
    if (pid == 0) {
        std::vector<char *> argv;
        argv.reserve(args.size() + 1);
        for (std::string &a : args)
            argv.push_back(a.data());
        argv.push_back(nullptr);
        ::execv(opts.selfExe.c_str(), argv.data());
        // execv only returns on failure; exit 2 marks the shard
        // unretryable (a bad selfExe path will not heal).
        ::_exit(2);
    }
    return pid;
}

/**
 * Campaign-wide status line from the shard heartbeat sidecars.
 * Advisory by construction: stderr only (stdout stays machine-stable),
 * shards without a readable heartbeat simply contribute nothing.
 */
void
printAggregatedStatus(const SupervisorOptions &opts,
                      const std::vector<ShardProc> &procs)
{
    std::uint64_t done = 0, total = 0, failures = 0;
    double rate = 0.0;
    std::uint32_t reporting = 0, running = 0;
    for (const ShardProc &p : procs) {
        if (p.state == ShardProc::State::Running)
            ++running;
        HeartbeatRecord hb;
        if (!readLastHeartbeat(
                shardHeartbeatPath(opts.journalDir, p.shard), &hb))
            continue;
        ++reporting;
        done += hb.done;
        total += hb.total;
        failures += hb.failures;
        if (!hb.final)
            rate += hb.scenariosPerSec;
    }
    if (reporting == 0)
        return;
    std::string eta;
    if (rate > 0.0 && total > done) {
        const std::uint64_t eta_s = static_cast<std::uint64_t>(
            static_cast<double>(total - done) / rate);
        eta = " eta " + std::to_string(eta_s) + "s";
    }
    std::fprintf(stderr,
                 "campaign: %llu/%llu points, %u/%zu shards running, "
                 "%llu failures, %.1f scen/s%s\n",
                 static_cast<unsigned long long>(done),
                 static_cast<unsigned long long>(total), running,
                 procs.size(),
                 static_cast<unsigned long long>(failures), rate,
                 eta.c_str());
}

std::string
describeDeath(int status)
{
    if (WIFSIGNALED(status))
        return std::string("killed by signal ") +
               std::to_string(WTERMSIG(status));
    if (WIFEXITED(status))
        return std::string("exited ") +
               std::to_string(WEXITSTATUS(status));
    return "died (unknown wait status)";
}

} // namespace

bool
SupervisionResult::allComplete() const
{
    return std::all_of(shards.begin(), shards.end(),
                       [](const ShardStatus &s) {
                           return s.outcome == ShardOutcome::Complete;
                       });
}

std::vector<std::uint64_t>
SupervisionResult::incompleteShards() const
{
    std::vector<std::uint64_t> out;
    for (const ShardStatus &s : shards)
        if (s.outcome != ShardOutcome::Complete)
            out.push_back(s.shard);
    return out;
}

std::uint32_t
SupervisionResult::workerRestarts() const
{
    std::uint32_t n = 0;
    for (const ShardStatus &s : shards)
        if (s.spawns > 0)
            n += s.spawns - 1;
    return n;
}

SupervisionResult
superviseShards(const CampaignManifest &manifest,
                const SupervisorOptions &opts,
                const volatile std::sig_atomic_t *stop)
{
    std::vector<ShardProc> procs(manifest.shards);
    for (std::uint32_t s = 0; s < manifest.shards; ++s)
        procs[s].shard = s;

    bool stopping = false;
    // Status-line cadence: the worker heartbeat interval, floored so a
    // very chatty cadence does not flood stderr.
    const std::uint64_t statusEveryMs =
        std::max<std::uint64_t>(opts.heartbeatMs, 500);
    auto lastStatusAt = SteadyClock::now();
    const auto allFinished = [&]() {
        return std::all_of(procs.begin(), procs.end(),
                           [](const ShardProc &p) {
                               return p.finished();
                           });
    };

    while (!allFinished()) {
        // Interruption: forward SIGTERM once, stop spawning, and wait
        // for workers to flush their in-flight point and exit.
        if (stop && *stop && !stopping) {
            stopping = true;
            for (ShardProc &p : procs) {
                if (p.state == ShardProc::State::Running)
                    ::kill(p.pid, SIGTERM);
                else if (p.state == ShardProc::State::Pending)
                    p.state = ShardProc::State::Stopped;
            }
        }

        // Spawn (or respawn, after backoff) every due shard.
        for (ShardProc &p : procs) {
            if (stopping || p.state != ShardProc::State::Pending ||
                    SteadyClock::now() < p.nextSpawnAt)
                continue;
            pid_t pid = spawnWorker(opts, p.shard);
            if (pid < 0) {
                p.lastFailure = std::string("fork: ") +
                                std::strerror(errno);
                p.state = ShardProc::State::Incomplete;
                continue;
            }
            p.pid = pid;
            p.state = ShardProc::State::Running;
            p.timedOut = false;
            ++p.spawns;
            p.lastProgressAt = SteadyClock::now();
            p.lastJournalBytes = journalSize(
                shardJournalPath(opts.journalDir, p.shard));
        }

        // Reap every worker that died.
        for (ShardProc &p : procs) {
            if (p.state != ShardProc::State::Running)
                continue;
            int status = 0;
            pid_t r = ::waitpid(p.pid, &status, WNOHANG);
            if (r == 0)
                continue;
            p.pid = -1;
            const bool cleanExit = WIFEXITED(status);
            const int code = cleanExit ? WEXITSTATUS(status) : -1;
            if (cleanExit && code == 0) {
                p.state = ShardProc::State::Complete;
                p.lastFailure.clear();
            } else if (cleanExit && code == 3 && stopping) {
                // Interrupted by our SIGTERM: clean resumable stop.
                p.state = ShardProc::State::Stopped;
            } else if (cleanExit && code == 2) {
                // Deterministic usage/corruption failure: respawning
                // would loop on the same exit.
                p.state = ShardProc::State::Incomplete;
                p.lastFailure = "worker exited 2 (not retryable)";
            } else {
                std::string why = p.timedOut
                    ? "no journal progress for " +
                      std::to_string(opts.progressTimeoutMs) +
                      " ms (killed)"
                    : describeDeath(status);
                p.lastFailure = why;
                if (stopping) {
                    p.state = ShardProc::State::Stopped;
                } else if (p.spawns > opts.maxRetries) {
                    p.state = ShardProc::State::Incomplete;
                    p.lastFailure =
                        why + "; retries exhausted after " +
                        std::to_string(p.spawns) + " launches";
                } else {
                    p.state = ShardProc::State::Pending;
                    const std::uint64_t backoff =
                        opts.backoffBaseMs << (p.spawns - 1);
                    p.nextSpawnAt = SteadyClock::now() +
                                    std::chrono::milliseconds(backoff);
                }
            }
        }

        // Progress-based timeout: a worker whose journal has not grown
        // within the window is wedged; SIGKILL it and let the reap path
        // decide between retry and exhaustion.
        if (!stopping && opts.progressTimeoutMs != 0) {
            for (ShardProc &p : procs) {
                if (p.state != ShardProc::State::Running)
                    continue;
                const std::uint64_t bytes = journalSize(
                    shardJournalPath(opts.journalDir, p.shard));
                if (bytes != p.lastJournalBytes) {
                    p.lastJournalBytes = bytes;
                    p.lastProgressAt = SteadyClock::now();
                } else if (msSince(p.lastProgressAt) >
                           opts.progressTimeoutMs) {
                    p.timedOut = true;
                    ::kill(p.pid, SIGKILL);
                }
            }
        }

        if (opts.heartbeatMs != 0 &&
                msSince(lastStatusAt) >= statusEveryMs) {
            printAggregatedStatus(opts, procs);
            lastStatusAt = SteadyClock::now();
        }

        if (!allFinished())
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }

    SupervisionResult result;
    result.stopped = stopping;
    for (const ShardProc &p : procs) {
        ShardStatus s;
        s.shard = p.shard;
        s.spawns = p.spawns;
        s.lastFailure = p.lastFailure;
        s.outcome = p.state == ShardProc::State::Complete
                        ? ShardOutcome::Complete
                        : p.state == ShardProc::State::Stopped
                              ? ShardOutcome::Stopped
                              : ShardOutcome::Incomplete;
        result.shards.push_back(s);
    }
    return result;
}

} // namespace sbrp
