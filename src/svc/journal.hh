/**
 * @file
 * Append-only, fsync'd per-shard verdict journals: the crash-tolerance
 * substrate of sharded campaigns.
 *
 * A shard worker writes one JSON line per completed crash point — a
 * header line first (schema version, shard identity, index range, the
 * manifest digest it was planned against), then one record per verdict
 * — and fsyncs after every line. The verdict set a journal holds is
 * therefore exactly the set of crash points whose results are durable,
 * no matter when the worker dies: `kill -9` can at worst tear the
 * record being written, never lose an acknowledged one.
 *
 * Loading distinguishes three shapes of damage deliberately:
 *  - A torn *trailing* line is the expected signature of a crashed
 *    writer. It is reported (tornTail), and resume truncates it away
 *    before appending — the crash point it covered simply re-runs.
 *  - Anything wrong *before* the end — unparseable middle lines, records
 *    outside the shard's range, verdicts disagreeing with the manifest's
 *    crash points, conflicting duplicates — cannot be produced by a
 *    crash of this writer and is refused as Corrupt. Callers exit 2
 *    rather than merging untrustworthy data.
 *  - A benign duplicate (identical record re-appended, e.g. by a worker
 *    killed between fsync and its bookkeeping) is tolerated: resume is
 *    idempotent.
 */

#ifndef SBRP_SVC_JOURNAL_HH
#define SBRP_SVC_JOURNAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "crashtest/scenario.hh"

namespace sbrp
{

class JsonValue;
struct CampaignManifest;

/** The journal's first line: who wrote it, against which plan. */
struct ShardJournalHeader
{
    std::uint32_t schemaVersion = 0;
    std::uint32_t shard = 0;
    std::uint32_t shards = 0;
    std::uint64_t begin = 0;   ///< Index range [begin, end) owned.
    std::uint64_t end = 0;
    std::string manifestDigest;
    std::string app;
};

/** One completed crash point: global index + full verdict. */
struct ShardJournalRecord
{
    std::uint64_t index = 0;
    CrashVerdict verdict;   ///< executed is implied true.
};

/** Record codec (one compact JSON object per line). */
JsonValue shardRecordJson(const ShardJournalRecord &r);
bool shardRecordFromJson(const JsonValue &v, ShardJournalRecord *out,
                         std::string *err);

enum class JournalLoad : std::uint8_t
{
    Ok,        ///< Parsed; records usable (possibly with a torn tail).
    Missing,   ///< No file / empty file / only a torn header.
    Corrupt,   ///< Mid-file damage or manifest mismatch: refuse.
};

struct ShardJournalContents
{
    ShardJournalHeader header;
    std::vector<ShardJournalRecord> records;   ///< In append order.
    bool tornTail = false;      ///< Final line was torn and dropped.
    std::uint64_t validBytes = 0;   ///< Prefix length a resume keeps.
};

/**
 * Loads and validates a journal. When `manifest` is non-null the header
 * digest, shard layout and every record are cross-checked against the
 * plan; `expect_shard` (when not ~0u) additionally pins the header's
 * shard id. On Corrupt, *err describes the first inconsistency.
 */
JournalLoad loadShardJournal(const std::string &path,
                             const CampaignManifest *manifest,
                             std::uint32_t expect_shard,
                             ShardJournalContents *out,
                             std::string *err);

/**
 * The append side. Every append is one write(2) of a full line followed
 * by fsync, so a record is either durable and complete or not yet
 * acknowledged — the invariant the loader's torn-tail handling relies
 * on.
 */
class ShardJournalWriter
{
  public:
    ShardJournalWriter() = default;
    ~ShardJournalWriter();

    ShardJournalWriter(const ShardJournalWriter &) = delete;
    ShardJournalWriter &operator=(const ShardJournalWriter &) = delete;

    /** Creates/truncates the journal and persists the header line. */
    bool create(const std::string &path, const ShardJournalHeader &h,
                std::string *err);

    /** Reopens an existing journal for append, first truncating to
        `valid_bytes` (dropping a torn tail). */
    bool resume(const std::string &path, std::uint64_t valid_bytes,
                std::string *err);

    /** Appends one record durably (write + fsync). */
    bool append(const ShardJournalRecord &r, std::string *err);

    void close();
    bool isOpen() const { return fd_ >= 0; }

  private:
    bool writeLine(const std::string &line, std::string *err);

    int fd_ = -1;
    std::string path_;
};

/** Canonical journal path for a shard: `<dir>/shard-<i>.journal`. */
std::string shardJournalPath(const std::string &dir, std::uint32_t shard);

/** mkdir -p: creates `dir` and any missing parents. Returns false and
    sets *err on a non-EEXIST failure. */
bool ensureDirectories(const std::string &dir, std::string *err);

} // namespace sbrp

#endif // SBRP_SVC_JOURNAL_HH
