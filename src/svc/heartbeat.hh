/**
 * @file
 * Per-shard campaign heartbeats: the live-progress sidecar next to each
 * verdict journal.
 *
 * The journal (journal.hh) answers "which verdicts are durable"; it
 * deliberately says nothing about *rate* — a supervisor or an operator
 * watching a long campaign cannot tell a slow shard from a wedged one
 * without wall-clock context. Each worker therefore appends, on a
 * wall-clock cadence, one JSON heartbeat line to
 * `<dir>/shard-<i>.heartbeat.jsonl`: points done/total, executed vs
 * resumed-and-skipped, failing verdicts and persist faults seen so
 * far, the scenarios/sec rate, elapsed time and an ETA.
 *
 * Heartbeats are *advisory telemetry*, the journal's opposite in every
 * durability decision:
 *  - appended without fsync — a heartbeat is worthless once stale, so
 *    it never pays the journal's durability tax;
 *  - never consulted by resume — the journal alone decides what re-runs;
 *  - torn-tolerant by construction: the stream is opened in append
 *    mode so worker restarts extend it (the restart itself is visible
 *    as a non-monotone `done` step), and readers skip any line that
 *    does not parse instead of refusing the file;
 *  - emit failures are ignored — losing telemetry must never fail a
 *    shard.
 *
 * Everything wall-clock-derived in a heartbeat is nondeterministic, so
 * the campaign report only ever carries heartbeat *summaries* inside
 * its `execution` object (campaign.hh), which comparators strip —
 * merged-report byte-identity is unaffected.
 */

#ifndef SBRP_SVC_HEARTBEAT_HH
#define SBRP_SVC_HEARTBEAT_HH

#include <cstdint>
#include <string>

namespace sbrp
{

/** One heartbeat line (schema_versions.hh kHeartbeat). */
struct HeartbeatRecord
{
    std::uint32_t shard = 0;
    std::uint64_t done = 0;       ///< Verdicts durable: skipped+executed.
    std::uint64_t total = 0;      ///< Crash points the shard owns.
    std::uint64_t executed = 0;   ///< Run by this worker process.
    std::uint64_t skipped = 0;    ///< Already journaled at startup.
    std::uint64_t failures = 0;   ///< Failing verdicts seen this run.
    std::uint64_t persistFaults = 0;   ///< Summed over this run.
    double scenariosPerSec = 0.0;
    std::uint64_t elapsedMs = 0;  ///< Since this worker process started.
    std::uint64_t etaMs = 0;      ///< Remaining work at the current rate.
    std::uint64_t tsMs = 0;       ///< Unix wall clock, milliseconds.
    bool final = false;           ///< Last record of a clean worker exit.
};

/** Record codec: one compact JSON object (one line, no newline). */
std::string heartbeatRecordJson(const HeartbeatRecord &r);

/**
 * The append side. Open failures leave the writer closed and emit() a
 * no-op — heartbeats degrade to silence, never to a shard failure.
 */
class HeartbeatWriter
{
  public:
    HeartbeatWriter() = default;
    ~HeartbeatWriter();

    HeartbeatWriter(const HeartbeatWriter &) = delete;
    HeartbeatWriter &operator=(const HeartbeatWriter &) = delete;

    /** Opens (creating, appending) the stream. Returns isOpen(). */
    bool open(const std::string &path);

    /** Appends one record (write, no fsync). Failures are ignored. */
    void emit(const HeartbeatRecord &r);

    void close();
    bool isOpen() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
};

/** Canonical sidecar path: `<dir>/shard-<i>.heartbeat.jsonl`. */
std::string shardHeartbeatPath(const std::string &dir,
                               std::uint32_t shard);

/**
 * Reads the stream's most recent parseable heartbeat into `*out`.
 * Torn, garbled or missing lines are skipped (see the file comment);
 * returns false when no record could be read at all.
 */
bool readLastHeartbeat(const std::string &path, HeartbeatRecord *out);

/** Parseable heartbeat lines in the stream (0 for a missing file). */
std::uint64_t countHeartbeatRecords(const std::string &path);

} // namespace sbrp

#endif // SBRP_SVC_HEARTBEAT_HH
