/**
 * @file
 * The worker supervisor: runs a manifest's shards as child processes
 * and keeps the campaign making progress through worker failure.
 *
 * Each shard worker is a re-exec of this binary in `--shard-index`
 * mode, always launched with `--resume` so a respawn continues its
 * journal instead of restarting the shard. Supervision is journal-
 * centric: the journal's size is the progress signal (it grows by one
 * fsync'd line per verdict), so a worker that stops growing its journal
 * for longer than the progress timeout is presumed wedged and SIGKILLed
 * — losing at most the in-flight crash point, which its successor
 * re-runs.
 *
 * Failure policy, in order of severity:
 *  - Exit 0: shard complete.
 *  - Exit 2 (usage/corruption): never retried — the condition is
 *    deterministic and a respawn would only loop.
 *  - Any other death (signal, nonzero exit, timeout kill): retried with
 *    exponential backoff up to `maxRetries` respawns; exhaustion marks
 *    the shard Incomplete. Incomplete shards are *reported*, never
 *    silently dropped — the merge degrades gracefully and the process
 *    exit code says so.
 *  - SIGINT/SIGTERM at the supervisor forwards SIGTERM to workers,
 *    which finish their in-flight point, flush, and exit; everything
 *    still pending is marked Stopped (resumable).
 */

#ifndef SBRP_SVC_SUPERVISOR_HH
#define SBRP_SVC_SUPERVISOR_HH

#include <csignal>
#include <cstdint>
#include <string>
#include <vector>

namespace sbrp
{

struct CampaignManifest;

struct SupervisorOptions
{
    std::string selfExe;        ///< Worker binary (argv[0] re-exec).
    std::string manifestPath;   ///< Passed to workers verbatim.
    std::string journalDir;
    std::uint32_t maxRetries = 3;   ///< Respawns per shard.
    std::uint64_t progressTimeoutMs = 60000;   ///< Journal-growth stall.
    std::uint64_t backoffBaseMs = 200;   ///< Doubles per retry.
    std::uint64_t throttleMs = 0;        ///< Forwarded to workers.
    /** Worker heartbeat cadence (ms), forwarded as --heartbeat-ms;
        0 disables heartbeats entirely. When enabled the supervisor
        also aggregates the per-shard sidecars into a campaign-wide
        status line on the same cadence (stderr, advisory). */
    std::uint64_t heartbeatMs = 0;
};

enum class ShardOutcome : std::uint8_t
{
    Complete,     ///< Worker exited 0.
    Incomplete,   ///< Retries exhausted or unretryable failure.
    Stopped,      ///< Campaign interrupted; shard is resumable.
};

struct ShardStatus
{
    std::uint32_t shard = 0;
    ShardOutcome outcome = ShardOutcome::Stopped;
    std::uint32_t spawns = 0;     ///< Total worker launches.
    std::string lastFailure;      ///< Human-readable, empty if clean.
};

struct SupervisionResult
{
    std::vector<ShardStatus> shards;
    bool stopped = false;         ///< Interrupted by the stop flag.

    bool allComplete() const;
    std::vector<std::uint64_t> incompleteShards() const;
    /** Respawns beyond each shard's first launch, summed. */
    std::uint32_t workerRestarts() const;
};

/**
 * Supervises every shard of the manifest to completion, retry
 * exhaustion, or interruption (`stop` flag, typically signal-driven).
 * Blocking; returns the per-shard outcomes.
 */
SupervisionResult superviseShards(const CampaignManifest &manifest,
                                  const SupervisorOptions &opts,
                                  const volatile std::sig_atomic_t *stop);

} // namespace sbrp

#endif // SBRP_SVC_SUPERVISOR_HH
