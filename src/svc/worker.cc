#include "svc/worker.hh"

#include <chrono>

#include <unistd.h>

#include "common/schema_versions.hh"
#include "svc/heartbeat.hh"
#include "svc/journal.hh"
#include "svc/manifest.hh"

namespace sbrp
{

namespace
{

ShardRunResult
errorResult(const std::string &msg)
{
    ShardRunResult r;
    r.status = ShardRunStatus::Error;
    r.error = msg;
    return r;
}

} // namespace

ShardRunResult
runShard(const CampaignManifest &manifest, std::uint32_t shard,
         const std::string &journal_dir, bool resume,
         const volatile std::sig_atomic_t *stop,
         std::uint64_t throttle_ms, std::uint64_t heartbeat_ms)
{
    if (shard >= manifest.shards)
        return errorResult("shard index " + std::to_string(shard) +
                           " out of range (manifest has " +
                           std::to_string(manifest.shards) + " shards)");
    std::string err;
    if (!ensureDirectories(journal_dir, &err))
        return errorResult(err);

    const ShardRange range = manifest.ranges[shard];
    const std::string path = shardJournalPath(journal_dir, shard);

    ShardJournalContents existing;
    const JournalLoad load =
        loadShardJournal(path, &manifest, shard, &existing, &err);
    if (load == JournalLoad::Corrupt)
        return errorResult(err);
    if (load == JournalLoad::Ok && !resume)
        return errorResult("journal '" + path + "' already exists; pass "
                           "--resume to continue it or remove it to "
                           "start over");

    // Indices already durable — the resume skip set.
    std::vector<bool> done(range.size(), false);
    for (const ShardJournalRecord &r : existing.records)
        done[r.index - range.begin] = true;

    ShardJournalWriter writer;
    if (load == JournalLoad::Ok) {
        if (!writer.resume(path, existing.validBytes, &err))
            return errorResult(err);
    } else {
        ShardJournalHeader h;
        h.schemaVersion = schema::kShardJournal;
        h.shard = shard;
        h.shards = manifest.shards;
        h.begin = range.begin;
        h.end = range.end;
        h.manifestDigest = manifest.digest;
        h.app = manifest.scenario.app;
        if (!writer.create(path, h, &err))
            return errorResult(err);
    }

    ShardRunResult result;
    result.skipped = existing.records.size();
    result.tornTail = existing.tornTail;

    // Advisory progress heartbeats (svc/heartbeat.hh). An open failure
    // silently disables them: telemetry never fails a shard.
    using SteadyClock = std::chrono::steady_clock;
    const auto started = SteadyClock::now();
    const auto msSince = [](SteadyClock::time_point t) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                SteadyClock::now() - t).count());
    };
    HeartbeatWriter hb;
    if (heartbeat_ms != 0)
        hb.open(shardHeartbeatPath(journal_dir, shard));
    std::uint64_t hbFailures = 0;
    std::uint64_t hbFaults = 0;
    auto lastBeat = started;
    const auto emitBeat = [&](bool final_rec) {
        if (!hb.isOpen())
            return;
        HeartbeatRecord r;
        r.shard = shard;
        r.total = range.size();
        r.executed = result.executed;
        r.skipped = result.skipped;
        r.done = result.skipped + result.executed;
        r.failures = hbFailures;
        r.persistFaults = hbFaults;
        r.elapsedMs = msSince(started);
        if (r.elapsedMs > 0 && result.executed > 0) {
            r.scenariosPerSec = 1e3 *
                static_cast<double>(result.executed) /
                static_cast<double>(r.elapsedMs);
            r.etaMs = static_cast<std::uint64_t>(
                static_cast<double>(r.total - r.done) *
                static_cast<double>(r.elapsedMs) /
                static_cast<double>(result.executed));
        }
        r.tsMs = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::system_clock::now().time_since_epoch())
                .count());
        r.final = final_rec;
        hb.emit(r);
        lastBeat = SteadyClock::now();
    };
    emitBeat(false);

    ScenarioRunner runner(manifest.scenario);
    for (std::uint64_t idx = range.begin; idx < range.end; ++idx) {
        if (done[idx - range.begin])
            continue;
        if (stop && *stop) {
            emitBeat(true);
            result.status = ShardRunStatus::Interrupted;
            return result;
        }
        const CrashPoint &p = manifest.probe.points.points[idx];
        ShardJournalRecord rec;
        rec.index = idx;
        rec.verdict = runner.runCrashAt(p.cycle, p.kind);
        if (!writer.append(rec, &err))
            return errorResult(err);
        ++result.executed;
        if (!rec.verdict.pass())
            ++hbFailures;
        hbFaults += rec.verdict.persistFaults;
        if (hb.isOpen() && msSince(lastBeat) >= heartbeat_ms)
            emitBeat(false);
        if (throttle_ms != 0) {
            // Sliced so the heartbeat cadence survives throttled
            // stretches: a long sleep would otherwise look like a
            // stall to anything watching the sidecar.
            std::uint64_t slept = 0;
            while (slept < throttle_ms && !(stop && *stop)) {
                std::uint64_t chunk = throttle_ms - slept;
                if (hb.isOpen() && heartbeat_ms < chunk)
                    chunk = heartbeat_ms;
                ::usleep(static_cast<useconds_t>(chunk * 1000));
                slept += chunk;
                if (hb.isOpen() && msSince(lastBeat) >= heartbeat_ms)
                    emitBeat(false);
            }
        }
    }
    result.status = ShardRunStatus::Complete;
    emitBeat(true);
    return result;
}

} // namespace sbrp
