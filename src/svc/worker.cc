#include "svc/worker.hh"

#include <unistd.h>

#include "common/schema_versions.hh"
#include "svc/journal.hh"
#include "svc/manifest.hh"

namespace sbrp
{

namespace
{

ShardRunResult
errorResult(const std::string &msg)
{
    ShardRunResult r;
    r.status = ShardRunStatus::Error;
    r.error = msg;
    return r;
}

} // namespace

ShardRunResult
runShard(const CampaignManifest &manifest, std::uint32_t shard,
         const std::string &journal_dir, bool resume,
         const volatile std::sig_atomic_t *stop,
         std::uint64_t throttle_ms)
{
    if (shard >= manifest.shards)
        return errorResult("shard index " + std::to_string(shard) +
                           " out of range (manifest has " +
                           std::to_string(manifest.shards) + " shards)");
    std::string err;
    if (!ensureDirectories(journal_dir, &err))
        return errorResult(err);

    const ShardRange range = manifest.ranges[shard];
    const std::string path = shardJournalPath(journal_dir, shard);

    ShardJournalContents existing;
    const JournalLoad load =
        loadShardJournal(path, &manifest, shard, &existing, &err);
    if (load == JournalLoad::Corrupt)
        return errorResult(err);
    if (load == JournalLoad::Ok && !resume)
        return errorResult("journal '" + path + "' already exists; pass "
                           "--resume to continue it or remove it to "
                           "start over");

    // Indices already durable — the resume skip set.
    std::vector<bool> done(range.size(), false);
    for (const ShardJournalRecord &r : existing.records)
        done[r.index - range.begin] = true;

    ShardJournalWriter writer;
    if (load == JournalLoad::Ok) {
        if (!writer.resume(path, existing.validBytes, &err))
            return errorResult(err);
    } else {
        ShardJournalHeader h;
        h.schemaVersion = schema::kShardJournal;
        h.shard = shard;
        h.shards = manifest.shards;
        h.begin = range.begin;
        h.end = range.end;
        h.manifestDigest = manifest.digest;
        h.app = manifest.scenario.app;
        if (!writer.create(path, h, &err))
            return errorResult(err);
    }

    ShardRunResult result;
    result.skipped = existing.records.size();
    result.tornTail = existing.tornTail;

    ScenarioRunner runner(manifest.scenario);
    for (std::uint64_t idx = range.begin; idx < range.end; ++idx) {
        if (done[idx - range.begin])
            continue;
        if (stop && *stop) {
            result.status = ShardRunStatus::Interrupted;
            return result;
        }
        const CrashPoint &p = manifest.probe.points.points[idx];
        ShardJournalRecord rec;
        rec.index = idx;
        rec.verdict = runner.runCrashAt(p.cycle, p.kind);
        if (!writer.append(rec, &err))
            return errorResult(err);
        ++result.executed;
        if (throttle_ms != 0)
            ::usleep(static_cast<useconds_t>(throttle_ms * 1000));
    }
    result.status = ShardRunStatus::Complete;
    return result;
}

} // namespace sbrp
