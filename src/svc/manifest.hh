/**
 * @file
 * The sharded-campaign job manifest: one JSON document that makes a
 * campaign's work distributable and resumable.
 *
 * Planning a campaign runs the crash-free oracle probe exactly once and
 * freezes everything a worker or merger needs into the manifest: the
 * scenario (embedded as a crash-replay artifact with a null crash
 * point, so one codec serves both schemas), the enumerated crash-point
 * list, the clean-run oracle summary, the oracle run's slowest persist
 * ops, and a deterministic partition of the budgeted crash-point index
 * space into contiguous shard ranges. Workers therefore never probe —
 * they reconstruct the scenario and execute their index range — and
 * the merger can rebuild a campaign report byte-identical to a
 * single-process run without re-simulating anything but a failure
 * minimization.
 *
 * The manifest carries a FNV-1a digest of its own deterministic body.
 * Shard journals record that digest, which is what lets a resume refuse
 * to append verdicts computed under a different plan (exit 2) instead
 * of silently merging incompatible work.
 */

#ifndef SBRP_SVC_MANIFEST_HH
#define SBRP_SVC_MANIFEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "crashtest/campaign.hh"
#include "crashtest/scenario.hh"
#include "obs/provenance.hh"

namespace sbrp
{

class JsonValue;

/** One shard's half-open slice [begin, end) of the sorted, budgeted
    crash-point index space. */
struct ShardRange
{
    std::uint64_t begin = 0;
    std::uint64_t end = 0;

    std::uint64_t size() const { return end - begin; }
};

/**
 * Deterministic, balanced partition of `count` indices into `shards`
 * contiguous ranges (sizes differ by at most one; earlier shards get
 * the remainder). A pure function of its arguments, so any planner
 * invocation — on any machine — produces the same layout.
 */
std::vector<ShardRange> planShardRanges(std::uint64_t count,
                                        unsigned shards);

struct CampaignManifest
{
    CrashScenario scenario;
    bool paperConfig = false;
    std::uint64_t budgetRuns = 0;
    bool minimize = true;
    unsigned shards = 1;
    std::vector<ShardRange> ranges;

    /** Frozen oracle-probe outcome (points, horizon, clean verdicts). */
    CrashProbe probe;
    /** The oracle run's slowest persist ops (report pass-through). */
    std::vector<PersistOpRecord> slowestOps;

    /** Hex FNV-1a digest of the deterministic body; filled by toJson /
        validated by fromJson, recorded into every shard journal. */
    std::string digest;

    /** Runs the oracle probe for `cfg` and partitions the budgeted
        point space into `shards` ranges. Throws FatalError on an
        unknown app. */
    static CampaignManifest plan(const CampaignConfig &cfg,
                                 unsigned shards);

    /** Points actually scheduled (budget-truncated prefix). */
    std::uint64_t pointsToRun() const;

    /** Rebuilds the campaign configuration the manifest was planned
        from (jobs is execution environment, not plan state). */
    CampaignConfig toCampaignConfig() const;

    JsonValue toJson() const;
    static bool fromJson(const JsonValue &v, CampaignManifest *out,
                         std::string *err);

    /** Atomic write / load+validate. Both return false with *err on
        failure; load rejects digest mismatches and unknown schemas. */
    bool writeFile(const std::string &path, std::string *err) const;
    static bool loadFile(const std::string &path, CampaignManifest *out,
                         std::string *err);
};

} // namespace sbrp

#endif // SBRP_SVC_MANIFEST_HH
