#include "svc/manifest.hh"

#include <algorithm>
#include <cstdio>

#include "common/atomic_io.hh"
#include "common/json.hh"
#include "common/schema_versions.hh"

namespace sbrp
{

namespace
{

/** FNV-1a over the manifest's deterministic body text. */
std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : text) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
hex64(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return std::string(buf);
}

/** The scenario slot reuses the replay-artifact codec with a null
    crash point and a vacuously passing outcome. */
JsonValue
scenarioJson(const CrashScenario &s, bool paper_config)
{
    CrashVerdict none;
    none.executed = true;
    none.crashed = true;
    none.recoveredOk = true;
    return ReplayArtifact::fromScenario(s, paper_config, none).toJson();
}

bool
fail(std::string *err, const std::string &msg)
{
    if (err)
        *err = "campaign manifest: " + msg;
    return false;
}

/** The digest-covered body: everything but the digest itself. */
JsonValue
manifestBodyJson(const CampaignManifest &m)
{
    JsonValue o = JsonValue::object();
    o.set("kind", JsonValue(std::string("campaign-manifest")));
    o.set("schema_version",
          JsonValue(std::uint64_t{schema::kCampaignManifest}));
    o.set("scenario", scenarioJson(m.scenario, m.paperConfig));
    o.set("budget_runs", JsonValue(m.budgetRuns));
    o.set("minimize", JsonValue(m.minimize));
    o.set("shards", JsonValue(std::uint64_t{m.shards}));

    JsonValue ranges = JsonValue::array();
    for (const ShardRange &r : m.ranges) {
        JsonValue pair = JsonValue::array();
        pair.push(JsonValue(r.begin));
        pair.push(JsonValue(r.end));
        ranges.push(std::move(pair));
    }
    o.set("shard_ranges", std::move(ranges));

    JsonValue probe = JsonValue::object();
    probe.set("horizon_cycles", JsonValue(m.probe.horizon));
    probe.set("clean_consistent", JsonValue(m.probe.cleanConsistent));
    probe.set("clean_pmo_violations",
              JsonValue(m.probe.cleanPmoViolations));
    probe.set("clean_persist_faults",
              JsonValue(m.probe.cleanPersistFaults));
    probe.set("raw_events", JsonValue(m.probe.points.rawEvents));
    probe.set("candidates_pruned",
              JsonValue(m.probe.points.prunedCandidates));
    JsonValue points = JsonValue::array();
    for (const CrashPoint &p : m.probe.points.points) {
        JsonValue pt = JsonValue::array();
        pt.push(JsonValue(p.cycle));
        pt.push(JsonValue(std::string(toString(p.kind))));
        points.push(std::move(pt));
    }
    probe.set("points", std::move(points));
    o.set("probe", std::move(probe));

    JsonValue ops = JsonValue::array();
    for (const PersistOpRecord &r : m.slowestOps)
        ops.push(persistOpJson(r));
    o.set("slowest_ops", std::move(ops));
    return o;
}

} // namespace

std::vector<ShardRange>
planShardRanges(std::uint64_t count, unsigned shards)
{
    if (shards == 0)
        shards = 1;
    std::vector<ShardRange> out(shards);
    const std::uint64_t base = count / shards;
    const std::uint64_t rem = count % shards;
    std::uint64_t at = 0;
    for (unsigned i = 0; i < shards; ++i) {
        out[i].begin = at;
        at += base + (i < rem ? 1 : 0);
        out[i].end = at;
    }
    return out;
}

CampaignManifest
CampaignManifest::plan(const CampaignConfig &cfg, unsigned shards)
{
    CampaignManifest m;
    m.scenario = cfg.scenario;
    m.paperConfig = cfg.paperConfig;
    m.budgetRuns = cfg.budgetRuns;
    m.minimize = cfg.minimize;
    m.shards = shards == 0 ? 1 : shards;

    ScenarioRunner runner(cfg.scenario);
    PersistProvenance local;
    PersistProvenance *prov = cfg.provenance ? cfg.provenance : &local;
    m.probe = runner.probe(prov);
    m.slowestOps = prov->slowest();

    m.ranges = planShardRanges(m.pointsToRun(), m.shards);
    m.digest = hex64(fnv1a(manifestBodyJson(m).dump(0)));
    return m;
}

std::uint64_t
CampaignManifest::pointsToRun() const
{
    const std::uint64_t total = probe.points.points.size();
    return budgetRuns != 0 ? std::min(budgetRuns, total) : total;
}

CampaignConfig
CampaignManifest::toCampaignConfig() const
{
    CampaignConfig cfg;
    cfg.scenario = scenario;
    cfg.paperConfig = paperConfig;
    cfg.budgetRuns = budgetRuns;
    cfg.minimize = minimize;
    cfg.jobs = 1;
    return cfg;
}

JsonValue
CampaignManifest::toJson() const
{
    JsonValue o = manifestBodyJson(*this);
    o.set("digest", JsonValue(hex64(fnv1a(o.dump(0)))));
    return o;
}

bool
CampaignManifest::fromJson(const JsonValue &v, CampaignManifest *out,
                           std::string *err)
{
    if (!v.isObject())
        return fail(err, "top level is not an object");
    const JsonValue *f = v.find("kind");
    if (!f || !f->isString() || f->asString() != "campaign-manifest")
        return fail(err, "missing or wrong 'kind'");
    f = v.find("schema_version");
    if (!f || !f->isNumber() ||
            f->asU64() != schema::kCampaignManifest)
        return fail(err, "unsupported schema_version");

    CampaignManifest m;

    f = v.find("scenario");
    if (!f)
        return fail(err, "missing 'scenario'");
    ReplayArtifact art;
    std::string sub;
    if (!ReplayArtifact::fromJson(*f, &art, &sub))
        return fail(err, "bad scenario: " + sub);
    m.scenario = art.toScenario();
    m.paperConfig = art.paperConfig;

    f = v.find("budget_runs");
    if (!f || !f->isNumber())
        return fail(err, "missing 'budget_runs'");
    m.budgetRuns = f->asU64();
    f = v.find("minimize");
    if (!f || !f->isBool())
        return fail(err, "missing 'minimize'");
    m.minimize = f->asBool();
    f = v.find("shards");
    if (!f || !f->isNumber() || f->asU64() == 0)
        return fail(err, "missing or zero 'shards'");
    m.shards = static_cast<unsigned>(f->asU64());

    f = v.find("shard_ranges");
    if (!f || !f->isArray() || f->items().size() != m.shards)
        return fail(err, "'shard_ranges' must list one range per shard");
    for (const JsonValue &pair : f->items()) {
        if (!pair.isArray() || pair.items().size() != 2 ||
                !pair.items()[0].isNumber() ||
                !pair.items()[1].isNumber())
            return fail(err, "malformed shard range");
        ShardRange r;
        r.begin = pair.items()[0].asU64();
        r.end = pair.items()[1].asU64();
        if (r.end < r.begin)
            return fail(err, "shard range end precedes begin");
        m.ranges.push_back(r);
    }

    const JsonValue *probe = v.find("probe");
    if (!probe || !probe->isObject())
        return fail(err, "missing 'probe'");
    struct U64Field
    {
        const char *key;
        std::uint64_t *dst;
    };
    std::uint64_t horizon = 0;
    for (U64Field uf :
            {U64Field{"horizon_cycles", &horizon},
             U64Field{"clean_pmo_violations", &m.probe.cleanPmoViolations},
             U64Field{"clean_persist_faults",
                      &m.probe.cleanPersistFaults},
             U64Field{"raw_events", &m.probe.points.rawEvents},
             U64Field{"candidates_pruned",
                      &m.probe.points.prunedCandidates}}) {
        f = probe->find(uf.key);
        if (!f || !f->isNumber())
            return fail(err, std::string("probe: missing '") + uf.key +
                             "'");
        *uf.dst = f->asU64();
    }
    m.probe.horizon = horizon;
    m.probe.points.horizon = horizon;
    f = probe->find("clean_consistent");
    if (!f || !f->isBool())
        return fail(err, "probe: missing 'clean_consistent'");
    m.probe.cleanConsistent = f->asBool();

    f = probe->find("points");
    if (!f || !f->isArray())
        return fail(err, "probe: missing 'points'");
    Cycle prev = 0;
    for (const JsonValue &pt : f->items()) {
        if (!pt.isArray() || pt.items().size() != 2 ||
                !pt.items()[0].isNumber() || !pt.items()[1].isString())
            return fail(err, "probe: malformed crash point");
        CrashPoint p;
        p.cycle = pt.items()[0].asU64();
        if (!crashEventKindFromString(pt.items()[1].asString(), &p.kind))
            return fail(err, "probe: unknown event kind '" +
                             pt.items()[1].asString() + "'");
        if (!m.probe.points.points.empty() && p.cycle <= prev)
            return fail(err, "probe: crash points not strictly "
                             "increasing");
        prev = p.cycle;
        m.probe.points.points.push_back(p);
    }

    const std::uint64_t to_run = m.pointsToRun();
    for (const ShardRange &r : m.ranges)
        if (r.end > to_run)
            return fail(err, "shard range exceeds the budgeted point "
                             "space");

    f = v.find("slowest_ops");
    if (!f || !f->isArray())
        return fail(err, "missing 'slowest_ops'");
    for (const JsonValue &op : f->items()) {
        PersistOpRecord r;
        if (!persistOpFromJson(op, &r, &sub))
            return fail(err, "bad slowest_ops entry: " + sub);
        m.slowestOps.push_back(r);
    }

    f = v.find("digest");
    if (!f || !f->isString())
        return fail(err, "missing 'digest'");
    m.digest = f->asString();
    // Re-serializing the parsed body must reproduce the digest; a
    // mismatch means the manifest was edited or corrupted after
    // planning, and no journal written against it can be trusted.
    if (hex64(fnv1a(manifestBodyJson(m).dump(0))) != m.digest)
        return fail(err, "digest mismatch (corrupt or edited manifest)");

    *out = m;
    return true;
}

bool
CampaignManifest::writeFile(const std::string &path,
                            std::string *err) const
{
    std::string io;
    if (!writeFileAtomic(path, toJson().dump(2), &io)) {
        if (err)
            *err = "campaign manifest: " + io;
        return false;
    }
    return true;
}

bool
CampaignManifest::loadFile(const std::string &path, CampaignManifest *out,
                           std::string *err)
{
    std::string text, sub;
    if (!readFileToString(path, &text, &sub)) {
        if (err)
            *err = "campaign manifest: " + sub;
        return false;
    }
    JsonValue v = JsonValue::parse(text, &sub);
    if (v.isNull())
        return fail(err, "unparseable JSON (" + sub + ")");
    return fromJson(v, out, err);
}

} // namespace sbrp
