#include "svc/heartbeat.hh"

#include <cerrno>

#include <fcntl.h>
#include <unistd.h>

#include "common/json.hh"
#include "common/schema_versions.hh"

namespace sbrp
{

namespace
{

bool
heartbeatFromJson(const JsonValue &v, HeartbeatRecord *out)
{
    if (!v.isObject())
        return false;
    const JsonValue *f = v.find("kind");
    if (!f || !f->isString() || f->asString() != "heartbeat")
        return false;
    f = v.find("schema_version");
    if (!f || !f->isNumber() || f->asU64() != schema::kHeartbeat)
        return false;
    HeartbeatRecord r;
    struct U64Field
    {
        const char *key;
        std::uint64_t *dst;
    };
    std::uint64_t shard = 0;
    for (U64Field uf : {U64Field{"shard", &shard},
                        U64Field{"done", &r.done},
                        U64Field{"total", &r.total},
                        U64Field{"executed", &r.executed},
                        U64Field{"skipped", &r.skipped},
                        U64Field{"failures", &r.failures},
                        U64Field{"persist_faults", &r.persistFaults},
                        U64Field{"elapsed_ms", &r.elapsedMs},
                        U64Field{"eta_ms", &r.etaMs},
                        U64Field{"ts_ms", &r.tsMs}}) {
        f = v.find(uf.key);
        if (!f || !f->isNumber())
            return false;
        *uf.dst = f->asU64();
    }
    r.shard = static_cast<std::uint32_t>(shard);
    f = v.find("scenarios_per_sec");
    if (!f || !f->isNumber())
        return false;
    r.scenariosPerSec = f->asNumber();
    f = v.find("final");
    if (!f || !f->isBool())
        return false;
    r.final = f->asBool();
    *out = r;
    return true;
}

/** Whole-file read; empty string for missing/unreadable streams. */
std::string
slurp(const std::string &path)
{
    std::string text;
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return text;
    char buf[1 << 16];
    ssize_t n;
    while ((n = ::read(fd, buf, sizeof(buf))) != 0) {
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        text.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return text;
}

/** Calls `fn` on every parseable heartbeat line; skips the rest. */
template <typename Fn>
void
forEachHeartbeat(const std::string &path, Fn fn)
{
    const std::string text = slurp(path);
    std::size_t at = 0;
    while (at < text.size()) {
        std::size_t nl = text.find('\n', at);
        const std::size_t end =
            nl == std::string::npos ? text.size() : nl;
        const std::string line = text.substr(at, end - at);
        at = end + 1;
        if (line.empty())
            continue;
        std::string err;
        JsonValue v = JsonValue::parse(line, &err);
        HeartbeatRecord r;
        if (!v.isNull() && heartbeatFromJson(v, &r))
            fn(r);
    }
}

} // namespace

std::string
heartbeatRecordJson(const HeartbeatRecord &r)
{
    JsonValue o = JsonValue::object();
    o.set("kind", JsonValue(std::string("heartbeat")));
    o.set("schema_version",
          JsonValue(std::uint64_t{schema::kHeartbeat}));
    o.set("shard", JsonValue(std::uint64_t{r.shard}));
    o.set("done", JsonValue(r.done));
    o.set("total", JsonValue(r.total));
    o.set("executed", JsonValue(r.executed));
    o.set("skipped", JsonValue(r.skipped));
    o.set("failures", JsonValue(r.failures));
    o.set("persist_faults", JsonValue(r.persistFaults));
    o.set("scenarios_per_sec", JsonValue(r.scenariosPerSec));
    o.set("elapsed_ms", JsonValue(r.elapsedMs));
    o.set("eta_ms", JsonValue(r.etaMs));
    o.set("ts_ms", JsonValue(r.tsMs));
    o.set("final", JsonValue(r.final));
    return o.dump(0);
}

HeartbeatWriter::~HeartbeatWriter()
{
    close();
}

void
HeartbeatWriter::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
HeartbeatWriter::open(const std::string &path)
{
    close();
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    return fd_ >= 0;
}

void
HeartbeatWriter::emit(const HeartbeatRecord &r)
{
    if (fd_ < 0)
        return;
    const std::string line = heartbeatRecordJson(r) + "\n";
    std::size_t off = 0;
    while (off < line.size()) {
        ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return;   // Advisory: losing telemetry never fails a shard.
        }
        off += static_cast<std::size_t>(n);
    }
}

std::string
shardHeartbeatPath(const std::string &dir, std::uint32_t shard)
{
    std::string d = dir;
    if (!d.empty() && d.back() != '/')
        d += '/';
    return d + "shard-" + std::to_string(shard) + ".heartbeat.jsonl";
}

bool
readLastHeartbeat(const std::string &path, HeartbeatRecord *out)
{
    bool any = false;
    forEachHeartbeat(path, [&](const HeartbeatRecord &r) {
        *out = r;
        any = true;
    });
    return any;
}

std::uint64_t
countHeartbeatRecords(const std::string &path)
{
    std::uint64_t n = 0;
    forEachHeartbeat(path, [&](const HeartbeatRecord &) { ++n; });
    return n;
}

} // namespace sbrp
