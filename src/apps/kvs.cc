#include "apps/kvs.hh"

#include "common/log.hh"

namespace sbrp
{

KvsApp::KvsApp(ModelKind model, const KvsParams &params)
    : PmApp(model), p_(params)
{
    // Plan the batch: keys/values are random but each thread inserts
    // into its own slot stripe (a partitioned KVS batch), so the final
    // table is deterministic under any thread interleaving.
    Rng rng(p_.seed);
    plan_.reserve(std::size_t(p_.threads()) * p_.pairsPerThread);
    for (std::uint32_t t = 0; t < p_.threads(); ++t) {
        for (std::uint32_t i = 0; i < p_.pairsPerThread; ++i) {
            Insert ins;
            ins.key = 1 + (rng.next32() & 0x7fffffff);
            ins.val = 1 + (rng.next32() & 0x7fffffff);
            ins.slot = t * p_.slotsPerThread +
                       ins.key % p_.slotsPerThread;
            plan_.push_back(ins);
        }
    }
}

Addr
KvsApp::slotAddr(std::uint32_t slot) const
{
    return table_ + std::uint64_t(slot) * 8;
}

Addr
KvsApp::logAddr(std::uint32_t thread, std::uint32_t word) const
{
    return log_ + std::uint64_t(thread) * 16 + word * 4;
}

void
KvsApp::setupNvm(NvmDevice &nvm)
{
    std::uint64_t slots = std::uint64_t(p_.threads()) * p_.slotsPerThread;
    table_ = nvm.allocate("kvs.table", slots * 8);
    log_ = nvm.allocate("kvs.log", std::uint64_t(p_.threads()) * 16);
    // Durable images start zeroed: empty table, idle log.
}

void
KvsApp::setupGpu(GpuSystem &gpu)
{
    // Volatile staging area: threads assemble the pair here before the
    // PM insertion (GPM's system-scope fence must flush these too).
    scratch_ = gpu.gddrAlloc(std::uint64_t(p_.threads()) * 8);
}

KernelProgram
KvsApp::forward() const
{
    KernelProgram k("gpkvs_insert", p_.blocks, p_.threadsPerBlock);
    for (BlockId b = 0; b < p_.blocks; ++b) {
        for (std::uint32_t w = 0; w < k.warpsPerBlock(); ++w) {
            WarpBuilder wb(k.warp(b, w), 32);
            auto tid = [&](std::uint32_t l) {
                return b * p_.threadsPerBlock + w * 32 + l;
            };
            for (std::uint32_t i = 0; i < p_.pairsPerThread; ++i) {
                auto ins = [&](std::uint32_t l) -> const Insert & {
                    return plan_[std::size_t(tid(l)) * p_.pairsPerThread +
                                 i];
                };
                // Stage the new pair in volatile scratch.
                wb.storeImm([&](std::uint32_t l) {
                    return scratch_ + std::uint64_t(tid(l)) * 8;
                }, [&](std::uint32_t l) { return ins(l).key; });
                wb.storeImm([&](std::uint32_t l) {
                    return scratch_ + std::uint64_t(tid(l)) * 8 + 4;
                }, [&](std::uint32_t l) { return ins(l).val; });
                // Read the old pair.
                wb.load(0, [&](std::uint32_t l) {
                    return slotAddr(ins(l).slot);
                });
                wb.load(1, [&](std::uint32_t l) {
                    return slotAddr(ins(l).slot) + 4;
                });
                // insert_into_log: slot, old pair, VALID marker.
                wb.storeImm([&](std::uint32_t l) {
                    return logAddr(tid(l), 0);
                }, [&](std::uint32_t l) { return ins(l).slot; });
                wb.store([&](std::uint32_t l) {
                    return logAddr(tid(l), 1);
                }, 0);
                wb.store([&](std::uint32_t l) {
                    return logAddr(tid(l), 2);
                }, 1);
                wb.storeImm([&](std::uint32_t l) {
                    return logAddr(tid(l), 3);
                }, [](std::uint32_t) { return kLogValid; });
                orderPoint(wb);
                // insert_pair: reload the staged pair (a register
                // spill-reload; GPM's fence invalidated the scratch
                // line, the PM-only epoch barrier and SBRP kept it).
                wb.load(2, [&](std::uint32_t l) {
                    return scratch_ + std::uint64_t(tid(l)) * 8;
                });
                wb.load(3, [&](std::uint32_t l) {
                    return scratch_ + std::uint64_t(tid(l)) * 8 + 4;
                });
                wb.store([&](std::uint32_t l) {
                    return slotAddr(ins(l).slot);
                }, 2);
                wb.store([&](std::uint32_t l) {
                    return slotAddr(ins(l).slot) + 4;
                }, 3);
                orderPoint(wb);
                // commit_log.
                wb.storeImm([&](std::uint32_t l) {
                    return logAddr(tid(l), 3);
                }, [](std::uint32_t) { return kLogCommitted; });
                orderPoint(wb);
            }
        }
    }
    return k;
}

KernelProgram
KvsApp::recovery() const
{
    KernelProgram k("gpkvs_recover", p_.blocks, p_.threadsPerBlock);
    for (BlockId b = 0; b < p_.blocks; ++b) {
        for (std::uint32_t w = 0; w < k.warpsPerBlock(); ++w) {
            WarpBuilder wb(k.warp(b, w), 32);
            auto tid = [&](std::uint32_t l) {
                return b * p_.threadsPerBlock + w * 32 + l;
            };
            // Only in-flight (VALID) log entries need restoring.
            wb.exitIfNe([&](std::uint32_t l) {
                return logAddr(tid(l), 3);
            }, kLogValid);
            // read_from_log.
            wb.load(0, [&](std::uint32_t l) { return logAddr(tid(l), 0); });
            wb.load(1, [&](std::uint32_t l) { return logAddr(tid(l), 1); });
            wb.load(2, [&](std::uint32_t l) { return logAddr(tid(l), 2); });
            // restore_pair (slot index is data-dependent).
            wb.storeIdx([&](std::uint32_t) { return table_; }, 1, 0, 8);
            wb.storeIdx([&](std::uint32_t) { return table_ + 4; }, 2, 0, 8);
            durabilityPoint(wb);
            // remove_log.
            wb.storeImm([&](std::uint32_t l) {
                return logAddr(tid(l), 3);
            }, [](std::uint32_t) { return kLogIdle; });
        }
    }
    return k;
}

bool
KvsApp::verify(const NvmDevice &nvm) const
{
    // Replay the whole plan; the table must match exactly.
    std::uint64_t slots = std::uint64_t(p_.threads()) * p_.slotsPerThread;
    std::vector<std::uint32_t> key(slots, 0), val(slots, 0);
    for (const Insert &ins : plan_) {
        key[ins.slot] = ins.key;
        val[ins.slot] = ins.val;
    }
    for (std::uint64_t s = 0; s < slots; ++s) {
        if (nvm.durable().read32(slotAddr(static_cast<std::uint32_t>(s)))
                != key[s] ||
            nvm.durable().read32(
                slotAddr(static_cast<std::uint32_t>(s)) + 4) != val[s]) {
            return false;
        }
    }
    return true;
}

bool
KvsApp::verifyRecovered(const NvmDevice &nvm) const
{
    // After crash + recovery every thread's slot stripe must equal the
    // state after applying some prefix of its planned inserts: no torn
    // pairs, no gaps.
    for (std::uint32_t t = 0; t < p_.threads(); ++t) {
        std::uint32_t base = t * p_.slotsPerThread;
        std::vector<std::uint32_t> key(p_.slotsPerThread, 0);
        std::vector<std::uint32_t> val(p_.slotsPerThread, 0);

        bool matched = false;
        for (std::uint32_t prefix = 0; prefix <= p_.pairsPerThread &&
                !matched; ++prefix) {
            if (prefix > 0) {
                const Insert &ins =
                    plan_[std::size_t(t) * p_.pairsPerThread + prefix - 1];
                key[ins.slot - base] = ins.key;
                val[ins.slot - base] = ins.val;
            }
            bool eq = true;
            for (std::uint32_t s = 0; s < p_.slotsPerThread && eq; ++s) {
                if (nvm.durable().read32(slotAddr(base + s)) != key[s] ||
                        nvm.durable().read32(slotAddr(base + s) + 4) !=
                            val[s]) {
                    eq = false;
                }
            }
            matched = eq;
        }
        if (!matched)
            return false;
    }
    return true;
}

} // namespace sbrp
