/**
 * @file
 * Framework for the paper's six PM-aware GPU applications (Table 2).
 *
 * Each application builds model-specific kernels: under SBRP it uses
 * oFence / dFence / scoped pAcq / pRel; under the epoch models (GPM and
 * 'Epoch') it uses system-scope fences as epoch barriers with volatile
 * flag spins. The harness runs crash-free executions, crash injections
 * and recovery, and collects the statistics the figures need.
 */

#ifndef SBRP_APPS_APP_HH
#define SBRP_APPS_APP_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/config.hh"
#include "common/types.hh"
#include "gpu/gpu_system.hh"
#include "gpu/kernel.hh"
#include "mem/nvm_device.hh"

namespace sbrp
{

/** Base class for PM-aware applications. */
class PmApp
{
  public:
    explicit PmApp(ModelKind model) : model_(model) {}
    virtual ~PmApp() = default;

    virtual std::string name() const = 0;

    /** Allocates named NVM regions and initial durable contents. */
    virtual void setupNvm(NvmDevice &nvm) = 0;

    /** Loads volatile inputs into GDDR (re-done after a power cycle). */
    virtual void setupGpu(GpuSystem &gpu) = 0;

    /** The forward kernel (includes any embedded recovery checks). */
    virtual KernelProgram forward() const = 0;

    /** True when recovery runs a dedicated kernel (logging recovery). */
    virtual bool hasRecoveryKernel() const { return false; }

    /**
     * Recovery kernel after a crash. Native-recovery apps re-run the
     * forward kernel (its embedded checks skip completed work).
     */
    virtual KernelProgram recovery() const { return forward(); }

    /** Durable state is complete and correct (after a clean run). */
    virtual bool verify(const NvmDevice &nvm) const = 0;

    /**
     * Durable state is *consistent* after crash + recovery. Native apps
     * are fully complete after their recovery re-run, so the default
     * delegates to verify().
     */
    virtual bool verifyRecovered(const NvmDevice &nvm) const
    { return verify(nvm); }

    ModelKind model() const { return model_; }

  protected:
    /** True when the kernel should use the scoped ops (oFence / dFence /
        pAcq / pRel) — SBRP and the related-work scoped-barrier model
        share the ISA surface; the epoch models use fences + spins. */
    bool
    sbrp() const
    {
        return model_ == ModelKind::Sbrp ||
               model_ == ModelKind::ScopedBarrier;
    }

    /** Intra-thread ordering point: oFence, or the epoch barrier. */
    void
    orderPoint(WarpBuilder &b, std::uint32_t active = 0) const
    {
        if (sbrp())
            b.ofence(active);
        else
            b.fence(Scope::System, active);
    }

    /** Durability point: dFence, or the epoch barrier. */
    void
    durabilityPoint(WarpBuilder &b, std::uint32_t active = 0) const
    {
        if (sbrp())
            b.dfence(active);
        else
            b.fence(Scope::System, active);
    }

    ModelKind model_;
};

/** Result of one harness run. */
struct AppRunResult
{
    /**
     * Kernel runtime (cycles until the last warp retires) — what
     * GPGPU-Sim reports and the paper's figures measure. Persists still
     * buffered at kernel end drain afterwards; recoverability does not
     * require them to be durable (that is the point of buffering).
     */
    Cycle forwardCycles = 0;
    /** Post-retire drain tail of the forward kernel. */
    Cycle forwardDrainTail = 0;
    Cycle recoveryCycles = 0;
    /** Warp instructions the recovery run issued (skipped work shows
        up here: native-recovery checks exit completed threads). */
    std::uint64_t recoveryInstructions = 0;
    bool crashed = false;
    bool consistent = false;
    std::uint64_t l1NvmReadMisses = 0;
    std::uint64_t nvmCommits = 0;
    std::uint64_t pmoViolations = 0;   ///< Only populated when traced.
};

/** Drives apps through crash-free and crash/recovery executions. */
class AppHarness
{
  public:
    /** Runs to completion; verifies the durable end state. */
    static AppRunResult runCrashFree(PmApp &app, const SystemConfig &cfg,
                                     bool traced = false);

    /**
     * Runs the forward kernel, crashes it `crash_at` cycles in, power
     * cycles, runs recovery on a fresh GpuSystem, and verifies the
     * recovered durable state.
     */
    static AppRunResult runCrashRecover(PmApp &app,
                                        const SystemConfig &cfg,
                                        Cycle crash_at,
                                        bool traced = false);
};

} // namespace sbrp

#endif // SBRP_APPS_APP_HH
