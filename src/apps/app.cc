#include "apps/app.hh"

#include "formal/checker.hh"
#include "formal/trace.hh"

namespace sbrp
{

AppRunResult
AppHarness::runCrashFree(PmApp &app, const SystemConfig &cfg, bool traced)
{
    NvmDevice nvm;
    app.setupNvm(nvm);

    ExecutionTrace trace;
    AppRunResult r;
    {
        GpuSystem gpu(cfg, nvm, traced ? &trace : nullptr);
        app.setupGpu(gpu);
        auto res = gpu.launch(app.forward());
        r.forwardCycles = res.execCycles;
        r.forwardDrainTail = res.cycles - res.execCycles;
        r.l1NvmReadMisses = gpu.sumSmStat("read_miss_nvm");
    }
    r.nvmCommits = nvm.commitCount();
    r.consistent = app.verify(nvm);
    if (traced) {
        PmoChecker checker(trace);
        r.pmoViolations = checker.check().size();
    }
    return r;
}

AppRunResult
AppHarness::runCrashRecover(PmApp &app, const SystemConfig &cfg,
                            Cycle crash_at, bool traced)
{
    NvmDevice nvm;
    app.setupNvm(nvm);

    ExecutionTrace trace;
    AppRunResult r;
    {
        GpuSystem gpu(cfg, nvm, traced ? &trace : nullptr);
        app.setupGpu(gpu);
        auto res = gpu.launch(app.forward(), crash_at);
        r.forwardCycles = res.execCycles;
        r.crashed = res.crashed;
    }   // Power failure: volatile state is gone.

    if (traced) {
        PmoChecker checker(trace);
        r.pmoViolations = checker.check().size();
    }

    {
        // Power-up: fresh GPU over the surviving durable image.
        GpuSystem gpu(cfg, nvm);
        app.setupGpu(gpu);
        auto res = gpu.launch(app.recovery());
        r.recoveryCycles = res.execCycles;
        r.recoveryInstructions = gpu.sumSmStat("instructions");
    }
    r.nvmCommits = nvm.commitCount();
    r.consistent = app.verifyRecovered(nvm);
    return r;
}

} // namespace sbrp
