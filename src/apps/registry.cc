#include "apps/registry.hh"

#include <algorithm>
#include <cctype>

#include "apps/checkpoint.hh"
#include "apps/hashmap.hh"
#include "apps/kvs.hh"
#include "apps/multiqueue.hh"
#include "apps/reduction.hh"
#include "apps/scan.hh"
#include "apps/srad.hh"

namespace sbrp
{

namespace
{

std::string
lowered(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return out;
}

} // namespace

const std::vector<std::string> &
appRegistryNames()
{
    static const std::vector<std::string> names = {
        "gpKVS", "HM", "SRAD", "Red", "MQ", "Scan", "Ckpt",
    };
    return names;
}

std::string
resolveAppName(const std::string &name_or_alias)
{
    std::string key = lowered(name_or_alias);
    if (key == "gpkvs" || key == "kvs")
        return "gpKVS";
    if (key == "hm" || key == "hashmap")
        return "HM";
    if (key == "srad")
        return "SRAD";
    if (key == "red" || key == "reduction")
        return "Red";
    if (key == "mq" || key == "multiqueue")
        return "MQ";
    if (key == "scan")
        return "Scan";
    if (key == "ckpt" || key == "checkpoint")
        return "Ckpt";
    return "";
}

std::unique_ptr<PmApp>
makeRegisteredApp(const std::string &name_or_alias, ModelKind model,
                  bool bench, std::uint64_t seed)
{
    std::string name = resolveAppName(name_or_alias);
    if (name == "gpKVS") {
        KvsParams p = bench ? KvsParams::bench() : KvsParams::test();
        if (seed)
            p.seed = seed;
        return std::make_unique<KvsApp>(model, p);
    }
    if (name == "HM") {
        HashmapParams p =
            bench ? HashmapParams::bench() : HashmapParams::test();
        if (seed)
            p.seed = seed;
        return std::make_unique<HashmapApp>(model, p);
    }
    if (name == "SRAD") {
        SradParams p = bench ? SradParams::bench() : SradParams::test();
        if (seed)
            p.seed = seed;
        return std::make_unique<SradApp>(model, p);
    }
    if (name == "Red") {
        ReductionParams p =
            bench ? ReductionParams::bench() : ReductionParams::test();
        if (seed)
            p.seed = seed;
        return std::make_unique<ReductionApp>(model, p);
    }
    if (name == "MQ") {
        // Deterministic inputs: no seed to override.
        return std::make_unique<MultiqueueApp>(
            model, bench ? MultiqueueParams::bench()
                         : MultiqueueParams::test());
    }
    if (name == "Scan") {
        ScanParams p = bench ? ScanParams::bench() : ScanParams::test();
        if (seed)
            p.seed = seed;
        return std::make_unique<ScanApp>(model, p);
    }
    if (name == "Ckpt") {
        return std::make_unique<CheckpointApp>(
            model, bench ? CheckpointParams::bench()
                         : CheckpointParams::test());
    }
    return nullptr;
}

} // namespace sbrp
