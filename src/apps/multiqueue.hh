/**
 * @file
 * Multiqueue (paper Section 7.1): each threadblock owns a persistent
 * queue; batches of entries are inserted transactionally. Worker warps
 * persist their entries and release per-warp done flags (intra-block
 * PMO); the block leader acquires them, advances the persistent tail,
 * and then logs a commit snapshot of the tail (intra-thread PMO).
 * Recovery restores each queue's tail from its latest committed
 * snapshot, discarding in-flight transactions.
 */

#ifndef SBRP_APPS_MULTIQUEUE_HH
#define SBRP_APPS_MULTIQUEUE_HH

#include <vector>

#include "apps/app.hh"

namespace sbrp
{

struct MultiqueueParams
{
    std::uint32_t blocks = 4;
    std::uint32_t threadsPerBlock = 64;
    std::uint32_t batches = 4;   ///< <= 32 (recovery is lane-parallel).

    static MultiqueueParams test() { return MultiqueueParams{}; }

    static MultiqueueParams
    bench()
    {
        MultiqueueParams p;
        p.blocks = 60;
        p.threadsPerBlock = 256;
        p.batches = 12;
        return p;
    }
};

class MultiqueueApp : public PmApp
{
  public:
    MultiqueueApp(ModelKind model, const MultiqueueParams &params);

    std::string name() const override { return "MQ"; }
    void setupNvm(NvmDevice &nvm) override;
    void setupGpu(GpuSystem &gpu) override;
    KernelProgram forward() const override;
    bool hasRecoveryKernel() const override { return true; }
    KernelProgram recovery() const override;
    bool verify(const NvmDevice &nvm) const override;
    bool verifyRecovered(const NvmDevice &nvm) const override;

    /** Figure 7: emit block-scoped ops at device scope instead. */
    void setForceDeviceScope(bool v) { forceDeviceScope_ = v; }

  private:
    Scope blockScope() const
    { return forceDeviceScope_ ? Scope::Device : Scope::Block; }

    std::uint32_t entryValue(std::uint32_t b, std::uint32_t idx) const
    { return 1 + (b * 131 + idx * 7) % 100000; }

    /** PM metadata is line-padded: tails/log slots of different blocks
        (and different batches) must not share lines — GPU L1s are
        incoherent, and slot reuse would stall every transaction. */
    static constexpr std::uint64_t kStride = 128;

    Addr entryAddr(std::uint32_t b, std::uint32_t idx) const;
    Addr tailAddr(std::uint32_t b) const { return tail_ + kStride * b; }
    /** Commit snapshot of batch `k` (nonzero == committed). */
    Addr logAddr(std::uint32_t b, std::uint32_t batch) const
    {
        return log_ + kStride * (std::uint64_t(b) * p_.batches + batch);
    }

    MultiqueueParams p_;
    bool forceDeviceScope_ = false;
    Addr queue_ = 0;
    Addr tail_ = 0;
    Addr log_ = 0;
    Addr done_ = 0;      ///< Volatile per (block, batch, warp) flags.
    Addr pace_ = 0;      ///< Volatile per-block batch pacing flag.
    Addr scratch_ = 0;   ///< Volatile entry staging (GDDR).
};

} // namespace sbrp

#endif // SBRP_APPS_MULTIQUEUE_HH
