#include "apps/hashmap.hh"

#include "common/log.hh"

namespace sbrp
{

namespace
{

std::uint32_t
hash1(std::uint32_t key)
{
    key ^= key >> 16;
    key *= 0x45d9f3bu;
    return key;
}

std::uint32_t
hash2(std::uint32_t key)
{
    key ^= key >> 13;
    key *= 0x2c1b3c6du;
    return key;
}

} // namespace

HashmapApp::HashmapApp(ModelKind model, const HashmapParams &params)
    : PmApp(model), p_(params)
{
    // Build the cuckoo plan: simulate each thread's insertions within
    // its own stripe of the two tables, recording every slot write.
    Rng rng(p_.seed);
    std::uint32_t S = p_.stripeSlots;
    planned_.resize(p_.threads());

    for (std::uint32_t t = 0; t < p_.threads(); ++t) {
        // Stripe-local occupancy: (key, val) per table slot.
        std::vector<std::pair<std::uint32_t, std::uint32_t>> tab(
            2 * S, {0, 0});
        auto &steps = planned_[t];
        for (std::uint32_t i = 0; i < p_.insertsPerThread; ++i) {
            std::uint32_t key = 1 + (rng.next32() & 0x7fffffff);
            std::uint32_t val = 1 + (rng.next32() & 0x7fffffff);
            std::uint32_t table_sel = 0;
            for (std::uint32_t kick = 0; kick <= p_.maxKicks; ++kick) {
                std::uint32_t pos = (table_sel == 0 ? hash1(key)
                                                    : hash2(key)) % S;
                std::uint32_t local = table_sel * S + pos;

                Step step;
                step.gslot = t * 2 * S + local;
                step.key = key;
                step.val = val;
                steps.push_back(step);

                auto displaced = tab[local];
                tab[local] = {key, val};
                if (displaced.first == 0)
                    break;   // Empty slot: chain resolved.
                key = displaced.first;
                val = displaced.second;
                table_sel ^= 1;
            }
        }
    }
}

Addr
HashmapApp::slotAddr(std::uint32_t gslot) const
{
    return table_ + std::uint64_t(gslot) * 8;
}

Addr
HashmapApp::logAddr(std::uint32_t thread, std::uint32_t word) const
{
    return log_ + std::uint64_t(thread) * 16 + 4 * word;
}

void
HashmapApp::setupNvm(NvmDevice &nvm)
{
    std::uint64_t slots =
        std::uint64_t(p_.threads()) * 2 * p_.stripeSlots;
    table_ = nvm.allocate("hm.table", slots * 8);
    log_ = nvm.allocate("hm.log", std::uint64_t(p_.threads()) * 16);
}

void
HashmapApp::setupGpu(GpuSystem &gpu)
{
    // Volatile staging for the in-flight cuckoo chain entry.
    scratch_ = gpu.gddrAlloc(std::uint64_t(p_.threads()) * 8);
}

KernelProgram
HashmapApp::forward() const
{
    KernelProgram k("hashmap_insert", p_.blocks, p_.threadsPerBlock);
    std::uint32_t max_steps = 0;
    for (const auto &s : planned_)
        max_steps = std::max<std::uint32_t>(max_steps,
                                            std::uint32_t(s.size()));

    for (BlockId b = 0; b < p_.blocks; ++b) {
        for (std::uint32_t w = 0; w < k.warpsPerBlock(); ++w) {
            WarpBuilder wb(k.warp(b, w), 32);
            auto tid = [&](std::uint32_t l) {
                return b * p_.threadsPerBlock + w * 32 + l;
            };

            // Chains have different lengths; lanes drop out of later
            // steps via the active mask.
            for (std::uint32_t s = 0; s < max_steps; ++s) {
                std::uint32_t active = 0;
                for (std::uint32_t l = 0; l < 32; ++l) {
                    if (s < planned_[tid(l)].size())
                        active |= mask::lane(l);
                }
                if (!active)
                    break;
                auto step = [&, s](std::uint32_t l) -> const Step & {
                    return planned_[tid(l)][s];
                };
                // Stage the entry being placed (volatile).
                wb.storeImm([&](std::uint32_t l) {
                    return scratch_ + std::uint64_t(tid(l)) * 8;
                }, [&](std::uint32_t l) { return step(l).key; }, active);
                wb.storeImm([&](std::uint32_t l) {
                    return scratch_ + std::uint64_t(tid(l)) * 8 + 4;
                }, [&](std::uint32_t l) { return step(l).val; }, active);
                // Read the entry this step displaces.
                wb.load(0, [&](std::uint32_t l) {
                    return slotAddr(step(l).gslot);
                }, active);
                wb.load(1, [&](std::uint32_t l) {
                    return slotAddr(step(l).gslot) + 4;
                }, active);
                // Undo-log it.
                wb.storeImm([&](std::uint32_t l) {
                    return logAddr(tid(l), 0);
                }, [&](std::uint32_t l) { return step(l).gslot; },
                   active);
                wb.store([&](std::uint32_t l) {
                    return logAddr(tid(l), 1);
                }, 0, active);
                wb.store([&](std::uint32_t l) {
                    return logAddr(tid(l), 2);
                }, 1, active);
                wb.storeImm([&](std::uint32_t l) {
                    return logAddr(tid(l), 3);
                }, [](std::uint32_t) { return kLogValid; }, active);
                orderPoint(wb, active);
                // Write the new occupant, reloading the staged entry
                // (GPM's fence invalidated the scratch line).
                wb.load(3, [&](std::uint32_t l) {
                    return scratch_ + std::uint64_t(tid(l)) * 8;
                }, active);
                wb.load(4, [&](std::uint32_t l) {
                    return scratch_ + std::uint64_t(tid(l)) * 8 + 4;
                }, active);
                wb.store([&](std::uint32_t l) {
                    return slotAddr(step(l).gslot);
                }, 3, active);
                wb.store([&](std::uint32_t l) {
                    return slotAddr(step(l).gslot) + 4;
                }, 4, active);
                orderPoint(wb, active);
                // Commit.
                wb.storeImm([&](std::uint32_t l) {
                    return logAddr(tid(l), 3);
                }, [](std::uint32_t) { return kLogCommitted; }, active);
                orderPoint(wb, active);
            }
        }
    }
    return k;
}

KernelProgram
HashmapApp::recovery() const
{
    KernelProgram k("hashmap_recover", p_.blocks, p_.threadsPerBlock);
    for (BlockId b = 0; b < p_.blocks; ++b) {
        for (std::uint32_t w = 0; w < k.warpsPerBlock(); ++w) {
            WarpBuilder wb(k.warp(b, w), 32);
            auto tid = [&](std::uint32_t l) {
                return b * p_.threadsPerBlock + w * 32 + l;
            };
            wb.exitIfNe([&](std::uint32_t l) {
                return logAddr(tid(l), 3);
            }, kLogValid);
            wb.load(0, [&](std::uint32_t l) { return logAddr(tid(l), 0); });
            wb.load(1, [&](std::uint32_t l) { return logAddr(tid(l), 1); });
            wb.load(2, [&](std::uint32_t l) { return logAddr(tid(l), 2); });
            wb.storeIdx([&](std::uint32_t) { return table_; }, 1, 0, 8);
            wb.storeIdx([&](std::uint32_t) { return table_ + 4; }, 2, 0,
                        8);
            durabilityPoint(wb);
            wb.storeImm([&](std::uint32_t l) {
                return logAddr(tid(l), 3);
            }, [](std::uint32_t) { return kLogIdle; });
        }
    }
    return k;
}

bool
HashmapApp::verify(const NvmDevice &nvm) const
{
    for (std::uint32_t t = 0; t < p_.threads(); ++t) {
        std::uint32_t S = p_.stripeSlots;
        std::vector<std::pair<std::uint32_t, std::uint32_t>> tab(
            2 * S, {0, 0});
        for (const Step &s : planned_[t])
            tab[s.gslot - t * 2 * S] = {s.key, s.val};
        for (std::uint32_t i = 0; i < 2 * S; ++i) {
            std::uint32_t gslot = t * 2 * S + i;
            if (nvm.durable().read32(slotAddr(gslot)) != tab[i].first ||
                    nvm.durable().read32(slotAddr(gslot) + 4) !=
                        tab[i].second) {
                return false;
            }
        }
    }
    return true;
}

bool
HashmapApp::verifyRecovered(const NvmDevice &nvm) const
{
    // Each thread's stripe must equal the state after some prefix of
    // its planned chain steps (the last in-flight step rolled back).
    for (std::uint32_t t = 0; t < p_.threads(); ++t) {
        std::uint32_t S = p_.stripeSlots;
        std::vector<std::pair<std::uint32_t, std::uint32_t>> tab(
            2 * S, {0, 0});

        auto stripe_matches = [&]() {
            for (std::uint32_t i = 0; i < 2 * S; ++i) {
                std::uint32_t gslot = t * 2 * S + i;
                if (nvm.durable().read32(slotAddr(gslot)) !=
                        tab[i].first ||
                    nvm.durable().read32(slotAddr(gslot) + 4) !=
                        tab[i].second) {
                    return false;
                }
            }
            return true;
        };

        bool matched = stripe_matches();
        for (std::size_t s = 0; s < planned_[t].size() && !matched; ++s) {
            const Step &st = planned_[t][s];
            tab[st.gslot - t * 2 * S] = {st.key, st.val};
            matched = stripe_matches();
        }
        if (!matched)
            return false;
    }
    return true;
}

} // namespace sbrp
