#include "apps/srad.hh"

#include "common/log.hh"

namespace sbrp
{

SradApp::SradApp(ModelKind model, const SradParams &params)
    : PmApp(model), p_(params)
{
    if (p_.tileCols % 32 != 0)
        sbrp_fatal("SRAD tileCols must be a multiple of the warp size");

    Rng rng(p_.seed);
    input_.resize(p_.pixels());
    for (auto &v : input_)
        v = 1 + static_cast<std::uint32_t>(rng.below(255));

    // Host replay. Step 1: noise = self + N + S neighbours.
    // Step 2: out = noise + W + E neighbour noise values.
    noiseExpected_.resize(p_.pixels());
    outExpected_.resize(p_.pixels());
    std::uint32_t T = p_.threadsPerBlock();
    for (std::uint32_t b = 0; b < p_.blocks; ++b) {
        for (std::uint32_t t = 0; t < T; ++t) {
            int row = static_cast<int>(t / p_.tileCols);
            int col = static_cast<int>(t % p_.tileCols);
            std::uint32_t g = b * T + t;
            noiseExpected_[g] = input_[g] +
                input_[clampedIdx(b, row - 1, col)] +
                input_[clampedIdx(b, row + 1, col)];
        }
        for (std::uint32_t t = 0; t < T; ++t) {
            int row = static_cast<int>(t / p_.tileCols);
            int col = static_cast<int>(t % p_.tileCols);
            std::uint32_t g = b * T + t;
            outExpected_[g] = noiseExpected_[g] +
                noiseExpected_[clampedIdx(b, row, col - 1)] +
                noiseExpected_[clampedIdx(b, row, col + 1)];
        }
    }
}

std::uint32_t
SradApp::clampedIdx(std::uint32_t b, int row, int col) const
{
    int rows = static_cast<int>(p_.tileRows);
    int cols = static_cast<int>(p_.tileCols);
    row = std::max(0, std::min(rows - 1, row));
    col = std::max(0, std::min(cols - 1, col));
    return b * p_.threadsPerBlock() +
           static_cast<std::uint32_t>(row) * p_.tileCols +
           static_cast<std::uint32_t>(col);
}

void
SradApp::setupNvm(NvmDevice &nvm)
{
    noise_ = nvm.allocate("srad.noise", std::uint64_t(p_.pixels()) * 4);
    out_ = nvm.allocate("srad.out", std::uint64_t(p_.pixels()) * 4);
}

void
SradApp::setupGpu(GpuSystem &gpu)
{
    input_addr_ = gpu.gddrAlloc(input_.size() * 4);
    for (std::size_t i = 0; i < input_.size(); ++i)
        gpu.mem().write32(input_addr_ + 4 * i, input_[i]);
    scratch_ = gpu.gddrAlloc(std::uint64_t(p_.pixels()) * 4);
}

KernelProgram
SradApp::forward() const
{
    std::uint32_t T = p_.threadsPerBlock();
    KernelProgram k("srad", p_.blocks, T);
    for (BlockId b = 0; b < p_.blocks; ++b) {
        for (std::uint32_t w = 0; w < k.warpsPerBlock(); ++w) {
            WarpBuilder wb(k.warp(b, w), 32);
            auto g = [&](std::uint32_t l) { return b * T + w * 32 + l; };
            auto rc = [&](std::uint32_t l, int dr, int dc) {
                std::uint32_t t = w * 32 + l;
                int row = static_cast<int>(t / p_.tileCols) + dr;
                int col = static_cast<int>(t % p_.tileCols) + dc;
                return clampedIdx(b, row, col);
            };

            // Native recovery: skip pixels already persisted.
            wb.exitIfNe([&](std::uint32_t l) {
                return out_ + 4 * g(l);
            }, 0);

            // Step 1: noise coefficient from the input image (GDDR).
            wb.load(0, [&](std::uint32_t l) {
                return input_addr_ + 4 * g(l);
            });
            wb.load(1, [&](std::uint32_t l) {
                return input_addr_ + 4 * rc(l, -1, 0);
            });
            wb.addReg(0, 1);
            wb.load(1, [&](std::uint32_t l) {
                return input_addr_ + 4 * rc(l, 1, 0);
            });
            wb.addReg(0, 1);
            // Directional derivatives spill to volatile scratch.
            wb.store([&](std::uint32_t l) {
                return scratch_ + 4 * g(l);
            }, 0);
            wb.compute(p_.computeCycles);
            wb.store([&](std::uint32_t l) { return noise_ + 4 * g(l); },
                     0);
            // The pixel must persist only after its noise value.
            orderPoint(wb);

            // Step 2 reads neighbour noise (NVM) after the whole tile
            // finished step 1, starting from the spilled derivative
            // (GPM's fence invalidated the scratch line).
            wb.barrier();
            wb.load(0, [&](std::uint32_t l) {
                return scratch_ + 4 * g(l);
            });
            wb.load(1, [&](std::uint32_t l) {
                return noise_ + 4 * rc(l, 0, -1);
            });
            wb.addReg(0, 1);
            wb.load(1, [&](std::uint32_t l) {
                return noise_ + 4 * rc(l, 0, 1);
            });
            wb.addReg(0, 1);
            wb.compute(p_.computeCycles);
            wb.store([&](std::uint32_t l) { return out_ + 4 * g(l); }, 0);
            orderPoint(wb);
        }
    }
    return k;
}

bool
SradApp::verify(const NvmDevice &nvm) const
{
    for (std::uint32_t g = 0; g < p_.pixels(); ++g) {
        if (nvm.durable().read32(noise_ + 4 * g) != noiseExpected_[g])
            return false;
        if (nvm.durable().read32(out_ + 4 * g) != outExpected_[g])
            return false;
    }
    return true;
}

} // namespace sbrp
