/**
 * @file
 * Reduction (paper Sections 4-5, Figures 2-3): a tree reduction whose
 * partial sums live in NVM so computation can resume after a crash.
 *
 * Threads retire in halves; a retiring thread publishes its subtree sum
 * with a block-scoped release *on the PM array element itself*
 * (pRel_block(&pArr[g], sum)); waiting threads acquire the partner
 * element. Block leaders publish the block sum with a device-scoped
 * release, and the final block device-acquires every partial sum before
 * persisting the total. Recovery is native: each thread returns early
 * when its PM element is already non-EMPTY (Figure 3, line 3).
 */

#ifndef SBRP_APPS_REDUCTION_HH
#define SBRP_APPS_REDUCTION_HH

#include <vector>

#include "apps/app.hh"
#include "common/rng.hh"

namespace sbrp
{

struct ReductionParams
{
    std::uint32_t blocks = 4;
    std::uint32_t threadsPerBlock = 64;   ///< Power of two, >= 32.
    std::uint32_t elemsPerThread = 4;     ///< Grid-stride pre-sum width.
    std::uint64_t seed = 0xabcd;

    static ReductionParams test() { return ReductionParams{}; }

    static ReductionParams
    bench()
    {
        // The paper reduces ~4M ints; scaled so the persist traffic
        // still exceeds the L1/PB by a wide margin (block waves churn
        // through every SM).
        ReductionParams p;
        p.blocks = 480;
        p.threadsPerBlock = 256;
        p.elemsPerThread = 4;
        return p;
    }
};

class ReductionApp : public PmApp
{
  public:
    ReductionApp(ModelKind model, const ReductionParams &params);

    std::string name() const override { return "Red"; }
    void setupNvm(NvmDevice &nvm) override;
    void setupGpu(GpuSystem &gpu) override;
    KernelProgram forward() const override;
    bool verify(const NvmDevice &nvm) const override;

    /**
     * When set, block-scoped operations are emitted device-scoped —
     * the "buffers only" configuration of Figure 7's breakdown.
     */
    void setForceDeviceScope(bool v) { forceDeviceScope_ = v; }

    std::uint64_t expectedTotal() const { return expectedTotal_; }

  private:
    Scope blockScope() const
    { return forceDeviceScope_ ? Scope::Device : Scope::Block; }

    ReductionParams p_;
    bool forceDeviceScope_ = false;
    std::vector<std::uint32_t> input_;
    std::vector<std::uint32_t> subtree_;   ///< Expected pArr values.
    std::vector<std::uint32_t> blockSum_;
    std::uint64_t expectedTotal_ = 0;

    Addr pArr_ = 0;
    Addr psum_ = 0;
    Addr out_ = 0;
    Addr input_addr_ = 0;
    Addr scratch_ = 0;   ///< Volatile per-thread spill slot (GDDR).
};

} // namespace sbrp

#endif // SBRP_APPS_REDUCTION_HH
