#include "apps/multiqueue.hh"

#include "common/log.hh"

namespace sbrp
{

MultiqueueApp::MultiqueueApp(ModelKind model,
                             const MultiqueueParams &params)
    : PmApp(model), p_(params)
{
    if (p_.batches == 0 || p_.batches > 32)
        sbrp_fatal("multiqueue supports 1..32 batches, got %s",
                   p_.batches);
}

Addr
MultiqueueApp::entryAddr(std::uint32_t b, std::uint32_t idx) const
{
    std::uint64_t per_block =
        std::uint64_t(p_.batches) * p_.threadsPerBlock;
    return queue_ + (std::uint64_t(b) * per_block + idx) * 4;
}

void
MultiqueueApp::setupNvm(NvmDevice &nvm)
{
    std::uint64_t per_block =
        std::uint64_t(p_.batches) * p_.threadsPerBlock;
    queue_ = nvm.allocate("mq.entries", p_.blocks * per_block * 4);
    tail_ = nvm.allocate("mq.tail", std::uint64_t(p_.blocks) * kStride);
    log_ = nvm.allocate("mq.log", std::uint64_t(p_.blocks) *
                                      p_.batches * kStride);
}

void
MultiqueueApp::setupGpu(GpuSystem &gpu)
{
    std::uint32_t warps = (p_.threadsPerBlock + 31) / 32;
    done_ = gpu.gddrAlloc(std::uint64_t(p_.blocks) * p_.batches *
                          warps * 4);
    pace_ = gpu.gddrAlloc(std::uint64_t(p_.blocks) * 4);
    scratch_ = gpu.gddrAlloc(
        std::uint64_t(p_.blocks) * p_.threadsPerBlock * 4);
}

KernelProgram
MultiqueueApp::forward() const
{
    std::uint32_t T = p_.threadsPerBlock;
    KernelProgram k("multiqueue", p_.blocks, T);
    std::uint32_t W = k.warpsPerBlock();

    auto done_addr = [&](std::uint32_t b, std::uint32_t batch,
                         std::uint32_t w) {
        return done_ +
               ((std::uint64_t(b) * p_.batches + batch) * W + w) * 4;
    };

    for (BlockId b = 0; b < p_.blocks; ++b) {
        for (std::uint32_t w = 0; w < W; ++w) {
            WarpBuilder wb(k.warp(b, w), 32);
            auto tid = [&](std::uint32_t l) { return w * 32 + l; };

            auto pace_addr = [&](std::uint32_t) {
                return pace_ + std::uint64_t(b) * 4;
            };

            for (std::uint32_t batch = 0; batch < p_.batches; ++batch) {
                // Batches are sequential transactions: wait (volatile
                // scheduling sync, not a PMO edge) until the previous
                // batch committed before producing the next.
                if (batch > 0)
                    wb.spinLoad(pace_addr, batch);
                // Stage the entry in volatile scratch, then persist it.
                wb.storeImm([&](std::uint32_t l) {
                    return scratch_ +
                           (std::uint64_t(b) * T + tid(l)) * 4;
                }, [&, batch](std::uint32_t l) {
                    return entryValue(b, batch * T + tid(l));
                });
                wb.storeImm([&, batch](std::uint32_t l) {
                    return entryAddr(b, batch * T + tid(l));
                }, [&, batch](std::uint32_t l) {
                    return entryValue(b, batch * T + tid(l));
                });

                // Lane 0 signals this warp's entries are ordered-done.
                std::uint32_t lane0 = mask::lane(0);
                if (sbrp()) {
                    wb.prel([&, batch](std::uint32_t) {
                        return done_addr(b, batch, w);
                    }, 1, blockScope(), lane0);
                } else {
                    // Epoch: make the entries durable, then raise the
                    // volatile flag.
                    wb.fence(Scope::System, lane0);
                    wb.storeImm([&, batch](std::uint32_t) {
                        return done_addr(b, batch, w);
                    }, [](std::uint32_t) { return 1; }, lane0);
                }

                // The block leader (warp 0, lane 0) commits the txn:
                // advance the tail (ordered after every entry via the
                // acquire chain), then log the commit snapshot.
                if (w == 0) {
                    for (std::uint32_t w2 = 0; w2 < W; ++w2) {
                        auto flag = [&, batch, w2](std::uint32_t) {
                            return done_addr(b, batch, w2);
                        };
                        if (sbrp())
                            wb.pacq(flag, 1, blockScope(), lane0);
                        else
                            wb.spinLoad(flag, 1, lane0);
                    }
                    wb.storeImm([&](std::uint32_t) {
                        return tailAddr(b);
                    }, [&, batch](std::uint32_t) {
                        return (batch + 1) * T;
                    }, lane0);
                    orderPoint(wb, lane0);
                    wb.storeImm([&, batch](std::uint32_t) {
                        return logAddr(b, batch);
                    }, [&, batch](std::uint32_t) {
                        return (batch + 1) * T;
                    }, lane0);
                    // Release the next batch (volatile pacing flag).
                    wb.storeImm(pace_addr, [batch](std::uint32_t) {
                        return batch + 1;
                    }, lane0);
                }
            }
        }
    }
    return k;
}

KernelProgram
MultiqueueApp::recovery() const
{
    // Lane k reads batch k's commit snapshot; the restored tail is the
    // maximum committed snapshot (0 if none committed).
    KernelProgram k("multiqueue_recover", p_.blocks, 32);
    for (BlockId b = 0; b < p_.blocks; ++b) {
        WarpBuilder wb(k.warp(b, 0), 32);
        std::uint32_t lanes = mask::firstN(p_.batches);
        std::uint32_t lane0 = mask::lane(0);
        wb.mov(0, 0);
        wb.load(0, [&](std::uint32_t l) { return logAddr(b, l); },
                lanes);
        wb.laneMax(0);
        wb.store([&](std::uint32_t) { return tailAddr(b); }, 0, lane0);
        durabilityPoint(wb, lane0);
    }
    return k;
}

bool
MultiqueueApp::verify(const NvmDevice &nvm) const
{
    std::uint32_t T = p_.threadsPerBlock;
    for (std::uint32_t b = 0; b < p_.blocks; ++b) {
        if (nvm.durable().read32(tailAddr(b)) != p_.batches * T)
            return false;
        for (std::uint32_t i = 0; i < p_.batches * T; ++i) {
            if (nvm.durable().read32(entryAddr(b, i)) != entryValue(b, i))
                return false;
        }
        for (std::uint32_t k2 = 0; k2 < p_.batches; ++k2) {
            if (nvm.durable().read32(logAddr(b, k2)) != (k2 + 1) * T)
                return false;
        }
    }
    return true;
}

bool
MultiqueueApp::verifyRecovered(const NvmDevice &nvm) const
{
    std::uint32_t T = p_.threadsPerBlock;
    for (std::uint32_t b = 0; b < p_.blocks; ++b) {
        // The restored tail must be the latest committed snapshot...
        std::uint32_t expect_tail = 0;
        for (std::uint32_t k2 = 0; k2 < p_.batches; ++k2) {
            std::uint32_t snap = nvm.durable().read32(logAddr(b, k2));
            if (snap != 0 && snap != (k2 + 1) * T)
                return false;   // Corrupt snapshot.
            expect_tail = std::max(expect_tail, snap);
        }
        if (nvm.durable().read32(tailAddr(b)) != expect_tail)
            return false;
        // ...and every entry below it must be durable and correct.
        for (std::uint32_t i = 0; i < expect_tail; ++i) {
            if (nvm.durable().read32(entryAddr(b, i)) != entryValue(b, i))
                return false;
        }
    }
    return true;
}

} // namespace sbrp
