/**
 * @file
 * SRAD (paper Section 7.1): speckle-reducing anisotropic diffusion.
 * Each thread denoises one pixel in two steps: it computes and persists
 * a noise coefficient, then (after a block barrier) combines neighbour
 * coefficients and persists the output pixel. Recovery is native: the
 * pixel must persist only after its own noise value (intra-thread PMO),
 * so threads whose output pixel is non-EMPTY return early and the rest
 * resume from the persisted values.
 *
 * Each threadblock owns a tile; neighbour indices clamp at tile edges
 * (the paper's halo exchange is irrelevant to the persistency study).
 */

#ifndef SBRP_APPS_SRAD_HH
#define SBRP_APPS_SRAD_HH

#include <vector>

#include "apps/app.hh"
#include "common/rng.hh"

namespace sbrp
{

struct SradParams
{
    std::uint32_t blocks = 4;           ///< Tiles.
    std::uint32_t tileCols = 32;
    std::uint32_t tileRows = 2;         ///< threads = tileCols * tileRows.
    std::uint16_t computeCycles = 30;   ///< Diffusion math per step.
    std::uint64_t seed = 0x54ad;

    std::uint32_t threadsPerBlock() const { return tileCols * tileRows; }
    std::uint32_t pixels() const { return blocks * threadsPerBlock(); }

    static SradParams test() { return SradParams{}; }

    /** Paper uses a 512x512 image; scaled to ~61K pixels so block
        waves keep churning every SM's L1 and persist buffer. */
    static SradParams
    bench()
    {
        SradParams p;
        p.blocks = 720;
        p.tileCols = 32;
        p.tileRows = 8;
        return p;
    }
};

class SradApp : public PmApp
{
  public:
    SradApp(ModelKind model, const SradParams &params);

    std::string name() const override { return "SRAD"; }
    void setupNvm(NvmDevice &nvm) override;
    void setupGpu(GpuSystem &gpu) override;
    KernelProgram forward() const override;
    bool verify(const NvmDevice &nvm) const override;

  private:
    /** Pixel index of (row, col) clamped inside block b's tile. */
    std::uint32_t clampedIdx(std::uint32_t b, int row, int col) const;

    SradParams p_;
    std::vector<std::uint32_t> input_;
    std::vector<std::uint32_t> noiseExpected_;
    std::vector<std::uint32_t> outExpected_;
    Addr noise_ = 0;
    Addr out_ = 0;
    Addr input_addr_ = 0;
    Addr scratch_ = 0;   ///< Volatile derivative staging (GDDR).
};

} // namespace sbrp

#endif // SBRP_APPS_SRAD_HH
