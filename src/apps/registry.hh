/**
 * @file
 * Name-based application registry shared by the CLI tools, the crash
 * campaign engine and the tests.
 *
 * Every consumer used to hand-roll its own name -> PmApp factory; replay
 * artifacts make that a correctness hazard (an artifact must reconstruct
 * *exactly* the run that produced it), so construction-by-name lives
 * here. Canonical names are the paper's (gpKVS, HM, SRAD, Red, MQ, Scan,
 * Ckpt); lookup also accepts case-insensitive long aliases (reduction,
 * hashmap, kvs, srad, multiqueue, scan, checkpoint).
 */

#ifndef SBRP_APPS_REGISTRY_HH
#define SBRP_APPS_REGISTRY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/app.hh"

namespace sbrp
{

/** Canonical app names in a fixed, deterministic order. */
const std::vector<std::string> &appRegistryNames();

/**
 * Resolves a name or alias to its canonical name; empty string when
 * unknown.
 */
std::string resolveAppName(const std::string &name_or_alias);

/**
 * Builds an application by (canonical or alias) name; null when unknown.
 *
 * @param bench  Use the paper-scale parameters instead of test scale.
 * @param seed   When nonzero, overrides the app's input-generation seed
 *               (apps without randomized inputs ignore it).
 */
std::unique_ptr<PmApp> makeRegisteredApp(const std::string &name_or_alias,
                                         ModelKind model,
                                         bool bench = false,
                                         std::uint64_t seed = 0);

} // namespace sbrp

#endif // SBRP_APPS_REGISTRY_HH
