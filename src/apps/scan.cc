#include "apps/scan.hh"

#include <bit>

#include "common/log.hh"

namespace sbrp
{

ScanApp::ScanApp(ModelKind model, const ScanParams &params)
    : PmApp(model), p_(params)
{
    std::uint32_t T = p_.threadsPerBlock;
    if (T < 32 || (T & (T - 1)) != 0)
        sbrp_fatal("scan needs a power-of-two block size >= 32");

    std::uint32_t n = p_.blocks * T * p_.arraysPerBlock;
    Rng rng(p_.seed);
    input_.resize(n);
    for (auto &v : input_)
        v = 1 + static_cast<std::uint32_t>(rng.below(9));

    // Expected inclusive prefix sums, per (array, block).
    expected_.resize(n);
    for (std::uint32_t a = 0; a < p_.arraysPerBlock; ++a) {
        for (std::uint32_t b = 0; b < p_.blocks; ++b) {
            std::uint32_t base = a * p_.blocks * T + b * T;
            std::uint32_t acc = 0;
            for (std::uint32_t t = 0; t < T; ++t) {
                acc += input_[base + t];
                expected_[base + t] = acc;
            }
        }
    }
}

std::uint32_t
ScanApp::iterations() const
{
    return static_cast<std::uint32_t>(
        std::countr_zero(p_.threadsPerBlock));
}

Addr
ScanApp::bufAddr(std::uint32_t array, std::uint32_t iter,
                 std::uint32_t g) const
{
    std::uint32_t n = p_.blocks * p_.threadsPerBlock;
    std::uint64_t per_array = std::uint64_t(iterations() + 1) * n;
    return buf_ + (per_array * array + std::uint64_t(iter) * n + g) * 4;
}

Addr
ScanApp::inAddr(std::uint32_t array, std::uint32_t g) const
{
    std::uint32_t n = p_.blocks * p_.threadsPerBlock;
    return input_addr_ + (std::uint64_t(array) * n + g) * 4;
}

void
ScanApp::setupNvm(NvmDevice &nvm)
{
    std::uint32_t n = p_.blocks * p_.threadsPerBlock;
    buf_ = nvm.allocate("scan.buf",
                        std::uint64_t(p_.arraysPerBlock) *
                            (iterations() + 1) * n * 4);
}

void
ScanApp::setupGpu(GpuSystem &gpu)
{
    input_addr_ = gpu.gddrAlloc(input_.size() * 4);
    for (std::size_t i = 0; i < input_.size(); ++i)
        gpu.mem().write32(input_addr_ + 4 * i, input_[i]);
    scratch_ = gpu.gddrAlloc(
        std::uint64_t(p_.blocks) * p_.threadsPerBlock * 4);
}

KernelProgram
ScanApp::forward() const
{
    std::uint32_t T = p_.threadsPerBlock;
    std::uint32_t K = iterations();
    std::uint32_t A = p_.arraysPerBlock;

    KernelProgram k("scan", p_.blocks, T);
    for (BlockId b = 0; b < p_.blocks; ++b) {
        for (std::uint32_t w = 0; w < k.warpsPerBlock(); ++w) {
            WarpBuilder wb(k.warp(b, w), 32);
            auto g = [&](std::uint32_t l) { return b * T + w * 32 + l; };
            auto tid = [&](std::uint32_t l) { return w * 32 + l; };

            // Native recovery: fully done once the last array's final
            // iteration persisted (earlier arrays are recomputed
            // deterministically when a crash interrupts the sequence).
            wb.exitIfNe([&](std::uint32_t l) {
                return bufAddr(A - 1, K, g(l));
            }, 0);

            for (std::uint32_t a = 0; a < A; ++a) {
                wb.load(0, [&, a](std::uint32_t l) {
                    return inAddr(a, g(l));
                });

                auto publish = [&](std::uint32_t iter,
                                   std::uint32_t active) {
                    // Spill the running sum (volatile staging).
                    wb.store([&](std::uint32_t l) {
                        return scratch_ + 4 * g(l);
                    }, 0, active);
                    if (sbrp()) {
                        wb.prelReg([&, a, iter](std::uint32_t l) {
                            return bufAddr(a, iter, g(l));
                        }, 0, blockScope(), active);
                    } else {
                        // Epoch release: barrier first, then publish, so
                        // the released value is never visible before the
                        // prior iteration's persists are durable.
                        wb.fence(Scope::System, active);
                        wb.store([&, a, iter](std::uint32_t l) {
                            return bufAddr(a, iter, g(l));
                        }, 0, active);
                    }
                };

                publish(0, 0);
                for (std::uint32_t iter = 1; iter <= K; ++iter) {
                    std::uint32_t d = 1u << (iter - 1);
                    // Lanes with tid >= d add the neighbour to the left.
                    std::uint32_t lo = w * 32 >= d ? 0
                                      : std::min(32u, d - w * 32);
                    std::uint32_t need = mask::range(lo, 32);
                    if (need) {
                        auto neigh = [&, a, iter, d](std::uint32_t l) {
                            return bufAddr(a, iter - 1,
                                           b * T + tid(l) - d);
                        };
                        if (sbrp())
                            wb.pacqNe(neigh, 0, blockScope(), need);
                        else
                            wb.spinLoadNe(neigh, 0, need);
                        wb.load(1, neigh, need);
                        wb.addReg(0, 1, need);
                    }
                    publish(iter, 0);
                }
            }
        }
    }
    return k;
}

bool
ScanApp::verify(const NvmDevice &nvm) const
{
    std::uint32_t n = p_.blocks * p_.threadsPerBlock;
    for (std::uint32_t a = 0; a < p_.arraysPerBlock; ++a) {
        for (std::uint32_t g = 0; g < n; ++g) {
            if (nvm.durable().read32(bufAddr(a, iterations(), g)) !=
                    expected_[a * n + g]) {
                return false;
            }
        }
    }
    return true;
}

} // namespace sbrp
