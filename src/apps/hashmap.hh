/**
 * @file
 * Hashmap (paper Section 7.1): cuckoo-hash insertion of value batches.
 * Before a slot is (over)written — either by a fresh insert or by a
 * displacement along the cuckoo chain — the old entry is undo-logged to
 * PM (intra-thread PMO: log -> ofence -> write -> ofence -> commit).
 * Recovery restores the logged in-flight entry, as in gpKVS.
 *
 * Displacement chains are resolved at build time into a per-thread
 * sequence of slot writes; each thread hashes into its own slot stripe
 * (a partitioned batch), keeping the final table deterministic.
 */

#ifndef SBRP_APPS_HASHMAP_HH
#define SBRP_APPS_HASHMAP_HH

#include <vector>

#include "apps/app.hh"
#include "common/rng.hh"

namespace sbrp
{

struct HashmapParams
{
    std::uint32_t blocks = 4;
    std::uint32_t threadsPerBlock = 64;
    std::uint32_t insertsPerThread = 2;
    std::uint32_t stripeSlots = 8;     ///< Per thread, per table.
    std::uint32_t maxKicks = 4;
    std::uint64_t seed = 0xcafe;

    std::uint32_t threads() const { return blocks * threadsPerBlock; }

    static HashmapParams test() { return HashmapParams{}; }

    static HashmapParams
    bench()
    {
        // ~31K inserts (paper: ~50K entries; trimmed for sim speed).
        HashmapParams p;
        p.blocks = 60;
        p.threadsPerBlock = 256;
        p.insertsPerThread = 2;
        return p;
    }
};

class HashmapApp : public PmApp
{
  public:
    static constexpr std::uint32_t kLogIdle = 0;
    static constexpr std::uint32_t kLogValid = 1;
    static constexpr std::uint32_t kLogCommitted = 2;

    HashmapApp(ModelKind model, const HashmapParams &params);

    std::string name() const override { return "HM"; }
    void setupNvm(NvmDevice &nvm) override;
    void setupGpu(GpuSystem &gpu) override;
    KernelProgram forward() const override;
    bool hasRecoveryKernel() const override { return true; }
    KernelProgram recovery() const override;
    bool verify(const NvmDevice &nvm) const override;
    bool verifyRecovered(const NvmDevice &nvm) const override;

  private:
    /** One planned slot write (a chain step). */
    struct Step
    {
        std::uint32_t gslot;   ///< Global slot index across both tables.
        std::uint32_t key;
        std::uint32_t val;
    };

    Addr slotAddr(std::uint32_t gslot) const;
    Addr logAddr(std::uint32_t thread, std::uint32_t word) const;

    HashmapParams p_;
    /** Per-thread chain-step sequences (flattened, with offsets). */
    std::vector<std::vector<Step>> planned_;
    Addr table_ = 0;
    Addr log_ = 0;
    Addr scratch_ = 0;   ///< Volatile staging buffer (GDDR).
};

} // namespace sbrp

#endif // SBRP_APPS_HASHMAP_HH
