/**
 * @file
 * Checkpoint: a long-running iterative kernel that periodically
 * checkpoints partial results to PM — the paper's motivating use case
 * for "long-running GPU kernels, such as DNN training, that checkpoint
 * partial results for recoverability and early termination" (Section 1).
 *
 * The working state lives in GDDR; every K iterations each block
 * persists its slice into a double-buffered checkpoint area and then
 * commits by persisting a per-block epoch counter, ordered by the
 * intra-block release/acquire chain plus an oFence (or epoch barriers
 * under the epoch models).
 *
 * Crash invariant (checkpoint atomicity): a durable epoch counter of c
 * implies the buffer it names holds the *complete* state after c*K
 * iterations — a crash can lose the newest checkpoint, never tear one.
 */

#ifndef SBRP_APPS_CHECKPOINT_HH
#define SBRP_APPS_CHECKPOINT_HH

#include <vector>

#include "apps/app.hh"

namespace sbrp
{

struct CheckpointParams
{
    std::uint32_t blocks = 4;
    std::uint32_t threadsPerBlock = 64;
    std::uint32_t itersPerEpoch = 4;
    std::uint32_t epochs = 3;

    static CheckpointParams test() { return CheckpointParams{}; }

    static CheckpointParams
    bench()
    {
        CheckpointParams p;
        p.blocks = 60;
        p.threadsPerBlock = 256;
        p.itersPerEpoch = 8;
        p.epochs = 6;
        return p;
    }
};

class CheckpointApp : public PmApp
{
  public:
    CheckpointApp(ModelKind model, const CheckpointParams &params);

    std::string name() const override { return "Ckpt"; }
    void setupNvm(NvmDevice &nvm) override;
    void setupGpu(GpuSystem &gpu) override;
    KernelProgram forward() const override;
    bool verify(const NvmDevice &nvm) const override;

    /**
     * The checkpoint-atomicity invariant, checkable on *any* durable
     * image (including mid-crash, before recovery): every block's
     * committed epoch names a complete, correct snapshot.
     */
    bool checkpointInvariant(const NvmDevice &nvm) const;

    std::uint32_t expectedState(std::uint32_t iters,
                                std::uint32_t g) const;

  private:
    static constexpr std::uint64_t kCtrStride = 128;

    Addr bufAddr(std::uint32_t buf, std::uint32_t g) const;
    Addr ctrAddr(std::uint32_t b) const { return ctr_ + kCtrStride * b; }

    CheckpointParams p_;
    /** state_[iters][g]: host replay of the working state. */
    std::vector<std::vector<std::uint32_t>> replay_;
    Addr ckpt_ = 0;
    Addr ctr_ = 0;
    Addr state_ = 0;    ///< Volatile working state (GDDR).
    Addr done_ = 0;     ///< Volatile per (block, epoch, warp) flags.
};

} // namespace sbrp

#endif // SBRP_APPS_CHECKPOINT_HH
