#include "apps/reduction.hh"

#include "common/log.hh"

namespace sbrp
{

namespace
{

/** Lanes of warp `w` whose block-local tid falls in [lo, hi). */
std::uint32_t
laneRange(std::uint32_t w, std::uint32_t lo, std::uint32_t hi)
{
    std::uint32_t wbase = w * 32;
    std::uint32_t a = lo > wbase ? lo - wbase : 0;
    std::uint32_t b = hi > wbase ? hi - wbase : 0;
    a = std::min(a, 32u);
    b = std::min(b, 32u);
    return a < b ? mask::range(a, b) : 0;
}

} // namespace

ReductionApp::ReductionApp(ModelKind model, const ReductionParams &params)
    : PmApp(model), p_(params)
{
    std::uint32_t T = p_.threadsPerBlock;
    if (T < 32 || (T & (T - 1)) != 0)
        sbrp_fatal("reduction needs a power-of-two block size >= 32");

    std::uint32_t n = p_.blocks * T;
    Rng rng(p_.seed);
    input_.resize(std::size_t(n) * p_.elemsPerThread);
    for (auto &v : input_)
        v = 1 + static_cast<std::uint32_t>(rng.below(9));

    // Host replay: per-thread local sums, then the in-block tree.
    std::vector<std::uint32_t> s(n);
    for (std::uint32_t g = 0; g < n; ++g) {
        std::uint32_t sum = 0;
        for (std::uint32_t e = 0; e < p_.elemsPerThread; ++e)
            sum += input_[std::size_t(g) * p_.elemsPerThread + e];
        s[g] = sum;
    }
    subtree_.assign(n, 0);
    blockSum_.assign(p_.blocks, 0);
    for (std::uint32_t b = 0; b < p_.blocks; ++b) {
        std::uint32_t base = b * T;
        std::vector<std::uint32_t> acc(s.begin() + base,
                                       s.begin() + base + T);
        for (std::uint32_t half = T / 2; half >= 1; half /= 2) {
            for (std::uint32_t tid = half; tid < 2 * half; ++tid)
                subtree_[base + tid] = acc[tid];
            for (std::uint32_t tid = 0; tid < half; ++tid)
                acc[tid] += acc[tid + half];
        }
        blockSum_[b] = acc[0];
        expectedTotal_ += acc[0];
    }
}

void
ReductionApp::setupNvm(NvmDevice &nvm)
{
    std::uint32_t n = p_.blocks * p_.threadsPerBlock;
    pArr_ = nvm.allocate("red.parr", std::uint64_t(n) * 4);
    // Partial sums are padded to a line each: different SMs persist
    // them, and GPU L1s are incoherent (false sharing on PM lines).
    psum_ = nvm.allocate("red.psum", std::uint64_t(p_.blocks) * 128);
    out_ = nvm.allocate("red.out", 4);
}

void
ReductionApp::setupGpu(GpuSystem &gpu)
{
    Addr in = gpu.gddrAlloc(input_.size() * 4);
    for (std::size_t i = 0; i < input_.size(); ++i)
        gpu.mem().write32(in + 4 * i, input_[i]);
    input_addr_ = in;
    scratch_ = gpu.gddrAlloc(
        std::uint64_t(p_.blocks) * p_.threadsPerBlock * 4);
}

KernelProgram
ReductionApp::forward() const
{
    std::uint32_t T = p_.threadsPerBlock;
    std::uint32_t B = p_.blocks;
    std::uint32_t E = p_.elemsPerThread;
    Addr in = input_addr_;

    KernelProgram k("reduction", B, T);
    for (BlockId b = 0; b < B; ++b) {
        bool final_block = (b == B - 1);
        for (std::uint32_t w = 0; w < k.warpsPerBlock(); ++w) {
            WarpBuilder wb(k.warp(b, w), 32);
            auto g = [&](std::uint32_t l) { return b * T + w * 32 + l; };
            auto tid = [&](std::uint32_t l) { return w * 32 + l; };

            // Figure 3 line 3: return early if already persisted. The
            // final block's first warp re-runs unconditionally unless
            // the total is durable (it performs the cross-block sum).
            wb.exitIfNe([&](std::uint32_t l) -> Addr {
                if (final_block && w == 0)
                    return out_;
                if (tid(l) > 0)
                    return pArr_ + 4 * g(l);
                return psum_ + 128 * std::uint64_t(b);
            }, 0);

            // Grid-stride local sum over the GDDR input.
            wb.load(0, [&](std::uint32_t l) {
                return in + 4 * (std::uint64_t(g(l)) * E);
            });
            for (std::uint32_t e = 1; e < E; ++e) {
                wb.load(1, [&, e](std::uint32_t l) {
                    return in + 4 * (std::uint64_t(g(l)) * E + e);
                });
                wb.addReg(0, 1);
            }

            // Tree iterations: upper half retires (publishes pArr[g]);
            // lower half acquires the partner element and accumulates.
            for (std::uint32_t half = T / 2; half >= 1; half /= 2) {
                std::uint32_t upper = laneRange(w, half, 2 * half);
                std::uint32_t lower = laneRange(w, 0, half);
                if (upper) {
                    // Spill the local sum (volatile staging).
                    wb.store([&](std::uint32_t l) {
                        return scratch_ + 4 * g(l);
                    }, 0, upper);
                    if (sbrp()) {
                        wb.prelReg([&](std::uint32_t l) {
                            return pArr_ + 4 * g(l);
                        }, 0, blockScope(), upper);
                    } else {
                        // Epoch release: earlier persists must be durable
                        // before the published value becomes visible, so
                        // the epoch barrier sits on the critical path.
                        wb.fence(Scope::System, upper);
                        wb.store([&](std::uint32_t l) {
                            return pArr_ + 4 * g(l);
                        }, 0, upper);
                    }
                }
                if (lower) {
                    auto partner = [&, half](std::uint32_t l) {
                        return pArr_ + 4 * (b * T + tid(l) + half);
                    };
                    if (sbrp())
                        wb.pacqNe(partner, 0, blockScope(), lower);
                    else
                        wb.spinLoadNe(partner, 0, lower);
                    wb.load(1, partner, lower);
                    wb.addReg(0, 1, lower);
                }
            }

            // Block leader publishes the block sum at device scope
            // (Figure 3 lines 22-24).
            if (w == 0) {
                std::uint32_t lane0 = mask::lane(0);
                if (sbrp()) {
                    wb.prelReg([&](std::uint32_t) { return psum_ + 128 * std::uint64_t(b); },
                               0, Scope::Device, lane0);
                } else {
                    wb.fence(Scope::System, lane0);
                    wb.store([&](std::uint32_t) { return psum_ + 128 * std::uint64_t(b); },
                             0, lane0);
                    wb.fence(Scope::System, lane0);
                }

                if (final_block) {
                    // Cross-block sum: warp 0 handles 32 partial sums
                    // per chunk (lane-parallel acquire + load, then a
                    // warp-shuffle reduction), accumulating into r2.
                    wb.mov(2, 0);
                    for (std::uint32_t c = 0; c < B; c += 32) {
                        std::uint32_t lanes = std::min(32u, B - c);
                        std::uint32_t m = mask::firstN(lanes);
                        auto sum_addr = [&, c](std::uint32_t l) {
                            return psum_ + 128 * std::uint64_t(c + l);
                        };
                        if (sbrp())
                            wb.pacqNe(sum_addr, 0, Scope::Device, m);
                        else
                            wb.spinLoadNe(sum_addr, 0, m);
                        wb.load(1, sum_addr, m);
                        wb.laneSum(1, m);
                        wb.addReg(2, 1, lane0);
                    }
                    wb.store([&](std::uint32_t) { return out_; }, 2,
                             lane0);
                    durabilityPoint(wb, lane0);
                }
            }
        }
    }
    return k;
}

bool
ReductionApp::verify(const NvmDevice &nvm) const
{
    std::uint32_t T = p_.threadsPerBlock;
    sbrp_assert(expectedTotal_ <= 0xffffffffull,
                "reduction total overflows the 32-bit element type");
    if (nvm.durable().read32(out_) !=
            static_cast<std::uint32_t>(expectedTotal_)) {
        return false;
    }
    for (std::uint32_t b = 0; b < p_.blocks; ++b) {
        if (nvm.durable().read32(psum_ + 128 * std::uint64_t(b)) != blockSum_[b])
            return false;
    }
    for (std::uint32_t g = 0; g < p_.blocks * T; ++g) {
        if (g % T == 0)
            continue;   // Thread 0 of each block never writes pArr.
        if (nvm.durable().read32(pArr_ + 4 * g) != subtree_[g])
            return false;
    }
    return true;
}

} // namespace sbrp
