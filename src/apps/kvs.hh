/**
 * @file
 * gpKVS: GPU-accelerated persistent key-value store (paper Section 7.1,
 * Figure 4). A batch of key-value pairs is inserted in parallel; each
 * thread write-ahead undo-logs the old pair before overwriting it
 * (intra-thread PMO), and commits the log entry afterwards. Recovery
 * runs a dedicated kernel that restores logged in-flight pairs.
 */

#ifndef SBRP_APPS_KVS_HH
#define SBRP_APPS_KVS_HH

#include <vector>

#include "apps/app.hh"
#include "common/rng.hh"

namespace sbrp
{

struct KvsParams
{
    std::uint32_t blocks = 4;
    std::uint32_t threadsPerBlock = 64;
    std::uint32_t pairsPerThread = 2;
    std::uint32_t slotsPerThread = 4;
    std::uint64_t seed = 0x5eed;

    std::uint32_t
    threads() const
    {
        return blocks * threadsPerBlock;
    }

    /** Small configuration for unit tests. */
    static KvsParams test() { return KvsParams{}; }

    /** Paper-shaped workload, scaled to simulator speed (~16K pairs). */
    static KvsParams
    bench()
    {
        // ~61K pairs (paper: ~64K), with a table footprint well past
        // the L1/persist-buffer capacity of each SM.
        KvsParams p;
        p.blocks = 60;
        p.threadsPerBlock = 256;
        p.pairsPerThread = 4;
        p.slotsPerThread = 8;
        return p;
    }
};

class KvsApp : public PmApp
{
  public:
    /** Log entry states. */
    static constexpr std::uint32_t kLogIdle = 0;
    static constexpr std::uint32_t kLogValid = 1;
    static constexpr std::uint32_t kLogCommitted = 2;

    KvsApp(ModelKind model, const KvsParams &params);

    std::string name() const override { return "gpKVS"; }
    void setupNvm(NvmDevice &nvm) override;
    void setupGpu(GpuSystem &gpu) override;
    KernelProgram forward() const override;
    bool hasRecoveryKernel() const override { return true; }
    KernelProgram recovery() const override;
    bool verify(const NvmDevice &nvm) const override;
    bool verifyRecovered(const NvmDevice &nvm) const override;

  private:
    /** A planned insertion. */
    struct Insert
    {
        std::uint32_t slot;   ///< Global slot index.
        std::uint32_t key;
        std::uint32_t val;
    };

    Addr slotAddr(std::uint32_t slot) const;
    Addr logAddr(std::uint32_t thread, std::uint32_t word) const;

    KvsParams p_;
    std::vector<Insert> plan_;   ///< threads() * pairsPerThread entries.
    Addr table_ = 0;
    Addr log_ = 0;
    Addr scratch_ = 0;   ///< Volatile staging buffer (GDDR).
};

} // namespace sbrp

#endif // SBRP_APPS_KVS_HH
