#include "apps/checkpoint.hh"

#include "common/log.hh"

namespace sbrp
{

CheckpointApp::CheckpointApp(ModelKind model,
                             const CheckpointParams &params)
    : PmApp(model), p_(params)
{
    // Host replay: state[g] starts at g+1; each iteration adds the left
    // neighbour (clamped at the block edge) plus the iteration number.
    std::uint32_t T = p_.threadsPerBlock;
    std::uint32_t n = p_.blocks * T;
    std::uint32_t total = p_.itersPerEpoch * p_.epochs;

    replay_.resize(total + 1);
    replay_[0].resize(n);
    for (std::uint32_t g = 0; g < n; ++g)
        replay_[0][g] = g + 1;
    for (std::uint32_t it = 1; it <= total; ++it) {
        replay_[it].resize(n);
        for (std::uint32_t g = 0; g < n; ++g) {
            std::uint32_t tid = g % T;
            std::uint32_t left = tid == 0 ? g : g - 1;
            replay_[it][g] =
                replay_[it - 1][g] + replay_[it - 1][left] + it;
        }
    }
}

std::uint32_t
CheckpointApp::expectedState(std::uint32_t iters, std::uint32_t g) const
{
    return replay_[iters][g];
}

Addr
CheckpointApp::bufAddr(std::uint32_t buf, std::uint32_t g) const
{
    std::uint32_t n = p_.blocks * p_.threadsPerBlock;
    return ckpt_ + (std::uint64_t(buf) * n + g) * 4;
}

void
CheckpointApp::setupNvm(NvmDevice &nvm)
{
    std::uint32_t n = p_.blocks * p_.threadsPerBlock;
    ckpt_ = nvm.allocate("ckpt.buffers", 2ull * n * 4);
    ctr_ = nvm.allocate("ckpt.epoch", std::uint64_t(p_.blocks) *
                                          kCtrStride);
}

void
CheckpointApp::setupGpu(GpuSystem &gpu)
{
    std::uint32_t n = p_.blocks * p_.threadsPerBlock;
    state_ = gpu.gddrAlloc(std::uint64_t(n) * 4);
    for (std::uint32_t g = 0; g < n; ++g)
        gpu.mem().write32(state_ + 4ull * g, g + 1);
    std::uint32_t warps = (p_.threadsPerBlock + 31) / 32;
    done_ = gpu.gddrAlloc(std::uint64_t(p_.blocks) * p_.epochs *
                          warps * 4);
}

KernelProgram
CheckpointApp::forward() const
{
    std::uint32_t T = p_.threadsPerBlock;
    KernelProgram k("checkpoint", p_.blocks, T);
    std::uint32_t W = k.warpsPerBlock();

    auto done_addr = [&](std::uint32_t b, std::uint32_t e,
                         std::uint32_t w) {
        return done_ + ((std::uint64_t(b) * p_.epochs + e) * W + w) * 4;
    };

    for (BlockId b = 0; b < p_.blocks; ++b) {
        for (std::uint32_t w = 0; w < W; ++w) {
            WarpBuilder wb(k.warp(b, w), 32);
            auto g = [&](std::uint32_t l) { return b * T + w * 32 + l; };
            auto tid = [&](std::uint32_t l) { return w * 32 + l; };
            auto left = [&](std::uint32_t l) {
                return tid(l) == 0 ? g(l) : g(l) - 1;
            };

            std::uint32_t it = 0;
            for (std::uint32_t e = 0; e < p_.epochs; ++e) {
                for (std::uint32_t i = 0; i < p_.itersPerEpoch; ++i) {
                    ++it;
                    // state[g] += state[left] + it  (volatile compute).
                    wb.load(0, [&](std::uint32_t l) {
                        return state_ + 4ull * g(l);
                    });
                    wb.load(1, [&](std::uint32_t l) {
                        return state_ + 4ull * left(l);
                    });
                    wb.addReg(0, 1);
                    wb.addImm(0, it);
                    wb.store([&](std::uint32_t l) {
                        return state_ + 4ull * g(l);
                    }, 0);
                    wb.barrier();   // Neighbour consistency.
                }

                // Checkpoint: persist the slice into buffer e % 2...
                wb.store([&, e](std::uint32_t l) {
                    return bufAddr(e % 2, g(l));
                }, 0);
                std::uint32_t lane0 = mask::lane(0);
                if (sbrp()) {
                    wb.prel([&, e](std::uint32_t) {
                        return done_addr(b, e, w);
                    }, 1, Scope::Block, lane0);
                } else {
                    wb.fence(Scope::System, lane0);
                    wb.storeImm([&, e](std::uint32_t) {
                        return done_addr(b, e, w);
                    }, [](std::uint32_t) { return 1; }, lane0);
                }

                // ...then the leader commits the epoch counter, ordered
                // after every warp's checkpoint data.
                if (w == 0) {
                    for (std::uint32_t w2 = 0; w2 < W; ++w2) {
                        auto flag = [&, e, w2](std::uint32_t) {
                            return done_addr(b, e, w2);
                        };
                        if (sbrp())
                            wb.pacq(flag, 1, Scope::Block, lane0);
                        else
                            wb.spinLoad(flag, 1, lane0);
                    }
                    if (sbrp())
                        wb.ofence(lane0);
                    wb.storeImm([&](std::uint32_t) { return ctrAddr(b); },
                                [e](std::uint32_t) { return e + 1; },
                                lane0);
                    if (!sbrp())
                        wb.fence(Scope::System, lane0);
                }
                wb.barrier();   // Epochs stay in lockstep.
            }
        }
    }
    return k;
}

bool
CheckpointApp::checkpointInvariant(const NvmDevice &nvm) const
{
    std::uint32_t T = p_.threadsPerBlock;
    for (std::uint32_t b = 0; b < p_.blocks; ++b) {
        std::uint32_t c = nvm.durable().read32(ctrAddr(b));
        if (c > p_.epochs)
            return false;
        if (c == 0)
            continue;   // Nothing committed: nothing to check.
        std::uint32_t iters = c * p_.itersPerEpoch;
        std::uint32_t buf = (c - 1) % 2;
        for (std::uint32_t t = 0; t < T; ++t) {
            std::uint32_t g = b * T + t;
            if (nvm.durable().read32(bufAddr(buf, g)) !=
                    expectedState(iters, g)) {
                return false;   // Torn or stale checkpoint.
            }
        }
    }
    return true;
}

bool
CheckpointApp::verify(const NvmDevice &nvm) const
{
    for (std::uint32_t b = 0; b < p_.blocks; ++b) {
        if (nvm.durable().read32(ctrAddr(b)) != p_.epochs)
            return false;
    }
    return checkpointInvariant(nvm);
}

} // namespace sbrp
