/**
 * @file
 * Scan (paper Section 7.1): per-threadblock Hillis-Steele inclusive
 * prefix sums over many arrays. Each iteration's outputs are published
 * to NVM with block-scoped releases; threads acquire the neighbour
 * element from the previous iteration (intra-threadblock PMO). Recovery
 * is native: computation resumes from the persisted array contents.
 */

#ifndef SBRP_APPS_SCAN_HH
#define SBRP_APPS_SCAN_HH

#include <vector>

#include "apps/app.hh"
#include "common/rng.hh"

namespace sbrp
{

struct ScanParams
{
    std::uint32_t blocks = 4;
    std::uint32_t threadsPerBlock = 64;   ///< Power of two, >= 32.
    std::uint32_t arraysPerBlock = 2;     ///< "Many data arrays" (7.1).
    std::uint64_t seed = 0x5ca9;

    static ScanParams test() { return ScanParams{}; }

    static ScanParams
    bench()
    {
        ScanParams p;
        p.blocks = 60;
        p.threadsPerBlock = 256;
        p.arraysPerBlock = 4;
        return p;
    }
};

class ScanApp : public PmApp
{
  public:
    ScanApp(ModelKind model, const ScanParams &params);

    std::string name() const override { return "Scan"; }
    void setupNvm(NvmDevice &nvm) override;
    void setupGpu(GpuSystem &gpu) override;
    KernelProgram forward() const override;
    bool verify(const NvmDevice &nvm) const override;

    /** Figure 7: emit block-scoped ops at device scope instead. */
    void setForceDeviceScope(bool v) { forceDeviceScope_ = v; }

  private:
    Scope blockScope() const
    { return forceDeviceScope_ ? Scope::Device : Scope::Block; }

    std::uint32_t iterations() const;
    Addr bufAddr(std::uint32_t array, std::uint32_t iter,
                 std::uint32_t g) const;
    Addr inAddr(std::uint32_t array, std::uint32_t g) const;

    ScanParams p_;
    bool forceDeviceScope_ = false;
    std::vector<std::uint32_t> input_;
    std::vector<std::uint32_t> expected_;   ///< Final prefix sums.
    Addr buf_ = 0;
    Addr input_addr_ = 0;
    Addr scratch_ = 0;   ///< Volatile per-thread spill slot (GDDR).
};

} // namespace sbrp

#endif // SBRP_APPS_SCAN_HH
