/**
 * @file
 * Umbrella header: the public API of the SBRP library.
 *
 * Typical use:
 * @code
 *   #include "api/sbrp.hh"
 *
 *   sbrp::SystemConfig cfg = sbrp::SystemConfig::paperDefault(
 *       sbrp::ModelKind::Sbrp, sbrp::SystemDesign::PmNear);
 *   sbrp::NvmDevice nvm;
 *   sbrp::Addr data = nvm.allocate("my-data", 4096);
 *   sbrp::GpuSystem gpu(cfg, nvm);
 *
 *   sbrp::KernelProgram k("hello", 1, 32);
 *   sbrp::WarpBuilder(k.warp(0, 0), 32)
 *       .storeImm([&](auto l) { return data + 4 * l; },
 *                 [](auto l) { return l; })
 *       .dfence();
 *   gpu.launch(k);
 *   // nvm.durable() now holds the data, crash-proof.
 * @endcode
 */

#ifndef SBRP_API_SBRP_HH
#define SBRP_API_SBRP_HH

#include "common/config.hh"
#include "common/log.hh"
#include "common/types.hh"
#include "formal/checker.hh"
#include "formal/litmus.hh"
#include "formal/litmus_corpus.hh"
#include "formal/trace.hh"
#include "fault/fault.hh"
#include "fault/injector.hh"
#include "gpu/gpu_system.hh"
#include "gpu/isa.hh"
#include "gpu/kernel.hh"
#include "mem/address_map.hh"
#include "mem/nvm_device.hh"

#endif // SBRP_API_SBRP_HH
