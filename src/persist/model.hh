/**
 * @file
 * Abstract per-SM persistency model.
 *
 * The SM routes every operation touching persistent state through this
 * interface: persist stores (NVM writes), epoch fences, SBRP's oFence /
 * dFence / pAcq / pRel, and L1 capacity evictions of dirty PM lines.
 * Concrete models: EpochModel (GPM and the enhanced PM-only epoch
 * barrier) and SbrpModel (the paper's contribution).
 */

#ifndef SBRP_PERSIST_MODEL_HH
#define SBRP_PERSIST_MODEL_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/bitmask.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "gpu/isa.hh"
#include "gpu/l1_cache.hh"

namespace sbrp
{

class Warp;
class MemoryFabric;
class FunctionalMemory;
class ExecutionTrace;
class TraceBuffer;
class PersistProvenance;
class ScheduleController;

/** Result of a model hook for the issuing warp. */
enum class HookResult : std::uint8_t
{
    Proceed,        ///< Operation accepted; warp continues this cycle.
    StallRetry,     ///< Not accepted; re-issue the instruction later.
    StallComplete,  ///< Accepted; warp parks until the model resumes it.
};

/** What the model's drain engine would do if ticked right now. */
enum class DrainState : std::uint8_t
{
    Idle,         ///< Nothing to drain; a tick would be a no-op.
    Workable,     ///< A tick would make forward progress (flush/pop).
    BlockedFsm,   ///< Head persist waits on an FSM hazard (acks).
    BlockedActr,  ///< Head persist waits on the flush allowance.
};

/** Services the model needs from its SM. */
class SmServices
{
  public:
    virtual ~SmServices() = default;

    virtual L1Cache &l1() = 0;
    virtual MemoryFabric &fabric() = 0;
    virtual FunctionalMemory &mem() = 0;
    virtual ExecutionTrace *trace() = 0;
    virtual Cycle now() const = 0;

    /** Wakes a StallComplete-parked warp. */
    virtual void resumeWarp(WarpSlot slot) = 0;

    /** This SM's hardware id (persist-op provenance identity). */
    virtual std::uint32_t smId() const { return 0; }

    /**
     * The system-wide persist-op provenance recorder, or null when
     * provenance is off. Models null-check once per instrumentation
     * site, mirroring the TraceBuffer discipline.
     */
    virtual PersistProvenance *provenance() { return nullptr; }

    /**
     * Event-callback prologue: settles the SM's skipped-cycle
     * accounting against the pre-event state and requests a tick at
     * the current cycle. Every completion callback that mutates model
     * or warp state calls this first, before touching anything — the
     * sleep/wake contract of the quiescence-aware scheduler
     * (docs/SIM_CORE.md). A no-op under standalone model tests.
     */
    virtual void noteAsyncActivity() {}

    /**
     * The attached model-checking schedule driver, or null (the normal
     * case). Models expose their persist-flush choice points through
     * it; see docs/MODEL_CHECKING.md.
     */
    virtual ScheduleController *scheduleController() { return nullptr; }
};

/** A deferred scoped-release flag publication. */
struct ReleaseFlag
{
    Addr addr = 0;
    std::uint32_t value = 0;
    ThreadId tid = 0;            ///< Issuing thread (trace identity).
    BlockId block = 0;
    std::uint64_t relId = 0;     ///< Trace id of the release (0 untraced).
    /** Trace id of the release's own write when the variable is in PM
        (pRel(&pArr[tid], sum) both publishes and persists, Fig. 3). */
    std::uint64_t persistId = 0;
};

/**
 * Base class: owns the acknowledgement counter (ACTR) and the flush
 * plumbing every model shares.
 */
class PersistencyModel
{
  public:
    PersistencyModel(const SystemConfig &cfg, SmServices &sm,
                     StatGroup &stats);
    virtual ~PersistencyModel() = default;

    PersistencyModel(const PersistencyModel &) = delete;
    PersistencyModel &operator=(const PersistencyModel &) = delete;

    /**
     * A persist store by `warp` covering the given L1 lines of
     * instruction `in`. On Proceed the model has updated all L1/PB
     * state AND performed the functional writes and trace records —
     * line by line, immediately after allocating each line, so a
     * capacity eviction of an earlier line by a later one in the same
     * instruction flushes real data.
     */
    virtual HookResult persistStore(Warp &warp, const WarpInstr &in,
                                    const std::vector<Addr> &lines) = 0;

    /** Conventional scoped fence (epoch barrier under GPM/epoch). */
    virtual HookResult fence(Warp &warp, Scope scope) = 0;

    virtual HookResult oFence(Warp &warp) = 0;
    virtual HookResult dFence(Warp &warp) = 0;

    /** Scoped release of one or more flags (per active lane). */
    virtual HookResult pRel(Warp &warp, std::vector<ReleaseFlag> flags,
                            Scope scope) = 0;

    /** Called when a spinning pAcq observes its expected value; `in`
        carries the acquired flag addresses. */
    virtual void pAcqSuccess(Warp &warp, const WarpInstr &in) = 0;

    /**
     * May this dirty PM victim be evicted right now without violating
     * PMO? (Paper Section 6.1, "Eviction".) On false the model records
     * the stall (EDM) and schedules enough draining for a later retry
     * to succeed; the caller re-issues the instruction.
     */
    virtual bool mayEvictPm(Warp &warp, const L1Cache::Line &victim) = 0;

    /** Evicts (flushes) a dirty PM victim previously cleared above. */
    virtual void evictPmNow(const L1Cache::Line &victim) = 0;

    /** Per-cycle drain engine. */
    virtual void tick(Cycle now) = 0;

    /**
     * Scheduler probe: what would tick() do right now? Must not change
     * observable state (counters, masks, trace). Workable obliges the
     * SM to tick next cycle; Blocked* lets it sleep — the pending acks
     * re-wake it through noteAsyncActivity. Models whose tick() is a
     * no-op (epoch, scoped-barrier: every transition is ack-driven)
     * keep the default Idle.
     */
    virtual DrainState drainState() { return DrainState::Idle; }

    /**
     * Settles per-tick drain bookkeeping for `n` skipped cycles. The
     * cycle-stepped engine called tick() every cycle; a model whose
     * drain is blocked accounts those stall counters here in bulk when
     * its SM wakes instead. Safe because a blocked drain cannot change
     * state during a sleep: every ack settles before mutating.
     */
    virtual void accrueIdleCycles(Cycle n) { (void)n; }

    /** Kernel-end: flush everything still buffered. */
    virtual void drainAll() = 0;

    /** True when no buffered or in-flight persists remain. */
    virtual bool drained() const = 0;

    /**
     * Attaches the SM's event-trace buffer (null disables tracing).
     * Models override to propagate it into their internal structures
     * (e.g. the persist buffer's occupancy track).
     */
    virtual void setTraceBuffer(TraceBuffer *tb) { tb_ = tb; }

    /**
     * Why the given warp slot is currently model-stalled, as a static
     * string for the trace's stall-reason spans (paper terms: ODM, EDM,
     * FSM, ACTR). Models that don't track per-slot reasons report the
     * generic "stall:model".
     */
    virtual const char *stallReason(std::uint32_t slot) const
    {
        (void)slot;
        return "stall:model";
    }

    std::uint32_t actr() const { return actr_; }

    /**
     * Instantaneous persist-buffer occupancy (live entries), sampled by
     * the metrics time-series gauges. Models without a PB report 0.
     */
    virtual std::uint32_t pbOccupancy() const { return 0; }

  protected:
    /**
     * Flushes one dirty PM line: invalidates it in L1, snapshots and
     * sends the persist write, and bumps ACTR until the persistence
     * domain acks.
     */
    void flushLine(Addr line_addr);

    /** Flush-completion handling shared by subclasses. */
    virtual void onAck() = 0;

    const SystemConfig &cfg_;
    SmServices &sm_;
    StatGroup &stats_;
    TraceBuffer *tb_ = nullptr;
    std::uint32_t actr_ = 0;
    /**
     * Ordering-epoch ordinal stamped into provenance records: bumped at
     * every model ordering point (oFence/dFence/pRel, epoch barrier,
     * persist barrier), so the audit stream can group commits by the
     * epoch that ordered them.
     */
    std::uint64_t provEpoch_ = 0;
};

/** Builds the model selected by cfg.model for one SM. */
std::unique_ptr<PersistencyModel> makePersistencyModel(
    const SystemConfig &cfg, SmServices &sm, StatGroup &stats);

} // namespace sbrp

#endif // SBRP_PERSIST_MODEL_HH
