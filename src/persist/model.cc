#include "persist/model.hh"

#include "gpu/mem_ctrl.hh"
#include "persist/barrier_model.hh"
#include "persist/epoch_model.hh"
#include "persist/sbrp_model.hh"

namespace sbrp
{

std::unique_ptr<PersistencyModel>
makePersistencyModel(const SystemConfig &cfg, SmServices &sm,
                     StatGroup &stats)
{
    switch (cfg.model) {
      case ModelKind::Gpm:
        return std::make_unique<EpochModel>(cfg, sm, stats,
                                            FenceSemantics::PmAndVolatile);
      case ModelKind::Epoch:
        return std::make_unique<EpochModel>(cfg, sm, stats,
                                            FenceSemantics::PmOnly);
      case ModelKind::Sbrp:
        return std::make_unique<SbrpModel>(cfg, sm, stats);
      case ModelKind::ScopedBarrier:
        return std::make_unique<ScopedBarrierModel>(cfg, sm, stats);
    }
    sbrp_panic("unknown persistency model");
}

PersistencyModel::PersistencyModel(const SystemConfig &cfg, SmServices &sm,
                                   StatGroup &stats)
    : cfg_(cfg), sm_(sm), stats_(stats)
{
}

void
PersistencyModel::flushLine(Addr line_addr)
{
    sm_.l1().invalidate(line_addr);
    ++actr_;
    stats_.stat("flushes").inc();
    // The ACTR drops even on a failed persist: the fault is reported
    // through the fabric's PersistFault record, and leaving the counter
    // stuck would turn a bounded fault into an infinite drain stall.
    sm_.fabric().persistWrite(line_addr, sm_.now(),
                              [this](const PersistResult &) {
        sm_.noteAsyncActivity();
        sbrp_assert(actr_ > 0, "ack with ACTR already zero");
        --actr_;
        onAck();
    });
}

} // namespace sbrp
