#include "persist/barrier_model.hh"

#include "common/log.hh"
#include "common/trace.hh"
#include "formal/trace.hh"
#include "gpu/mem_ctrl.hh"
#include "gpu/warp.hh"
#include "mem/address_map.hh"
#include "mem/functional_mem.hh"
#include "obs/provenance.hh"

namespace sbrp
{

ScopedBarrierModel::ScopedBarrierModel(const SystemConfig &cfg,
                                       SmServices &sm, StatGroup &stats)
    : PersistencyModel(cfg, sm, stats)
{
}

std::uint64_t
ScopedBarrierModel::minOutstanding() const
{
    if (outstanding_.empty())
        return ~0ull;
    return *outstanding_.begin();
}

void
ScopedBarrierModel::flushPmTracked(Addr line_addr)
{
    std::uint64_t seq = ++flushSeq_;
    outstanding_.insert(seq);
    sm_.l1().invalidate(line_addr);
    ++actr_;
    stats_.stat("flushes").inc();
    // Unbuffered like the epoch model: issue/admit/flush coincide, and
    // every barrier is a device-wide ordering point.
    std::uint64_t op_id = 0;
    if (auto *prov = sm_.provenance()) {
        Cycle issue = sm_.now();
        op_id = prov->beginOp(sm_.smId(), line_addr, Scope::Device,
                              provEpoch_, issue);
        prov->markFlush(op_id, issue);
        if (tb_)
            tb_->flowStart("persist", op_id);
    }
    // Runs for faulted persists too — see PersistencyModel::flushLine.
    sm_.fabric().persistWrite(line_addr, sm_.now(),
                              [this, seq, op_id](const PersistResult &) {
        sm_.noteAsyncActivity();
        sbrp_assert(actr_ > 0, "ack with ACTR already zero");
        --actr_;
        outstanding_.erase(seq);
        if (tb_ && op_id != 0)
            tb_->flowEnd("persist", op_id);
        onAck();
    }, op_id);
}

std::uint64_t
ScopedBarrierModel::barrier()
{
    ++provEpoch_;   // Ordering point (see EpochModel::flushEpoch).
    std::vector<Addr> dirty;
    sm_.l1().forEachLine([&](L1Cache::Line &l) {
        if (l.isPm && l.dirty)
            dirty.push_back(l.lineAddr);
    });
    for (Addr a : dirty)
        flushPmTracked(a);
    stats_.stat("persist_barriers").inc();
    return flushSeq_;
}

HookResult
ScopedBarrierModel::persistStore(Warp &warp, const WarpInstr &in,
                                 const std::vector<Addr> &lines)
{
    for (Addr line : lines) {
        L1Cache::Line *l = sm_.l1().probe(line);
        if (!l) {
            L1Cache::Line *victim = sm_.l1().victimFor(line);
            if (victim && victim->dirty) {
                if (victim->isPm)
                    evictPmNow(*victim);
                else
                    sm_.fabric().volatileWriteback(victim->lineAddr,
                                                   sm_.now());
            }
            L1Cache::Eviction ev;
            l = sm_.l1().allocate(line, sm_.now(), &ev);
        } else {
            sm_.l1().lookup(line, sm_.now());
        }
        l->dirty = true;
        l->isPm = true;

        std::uint32_t eff = warp.effActive(in);
        for (std::uint32_t ln = 0; ln < 32; ++ln) {
            if (!(eff & (1u << ln)))
                continue;
            Addr a = warp.effAddr(in, ln);
            if (addr_map::lineBase(a, cfg_.lineBytes) != line)
                continue;
            sm_.mem().write32(a, warp.operand(in, ln));
            if (sm_.trace()) {
                std::uint64_t id = sm_.trace()->recordPersist(
                    warp.thread(ln), warp.block(), a);
                sm_.trace()->notePendingStore(line, id);
            }
        }
    }
    return HookResult::Proceed;
}

HookResult
ScopedBarrierModel::fence(Warp &warp, Scope scope)
{
    (void)scope;
    return dFence(warp);
}

HookResult
ScopedBarrierModel::oFence(Warp &warp)
{
    // Every ordering point is a full stalling barrier: this is the
    // model's defining weakness relative to SBRP.
    return dFence(warp);
}

HookResult
ScopedBarrierModel::dFence(Warp &warp)
{
    std::uint64_t seq = barrier();
    if (outstanding_.empty())
        return HookResult::Proceed;
    waiters_.push_back(Waiter{warp.slot(), seq, {}});
    return HookResult::StallComplete;
}

void
ScopedBarrierModel::publishFlags(const std::vector<ReleaseFlag> &flags,
                                 WarpSlot slot)
{
    // Volatile flags publish now; a release to a PM variable must be
    // durable before it becomes visible (an acquirer's post-acquire
    // persists may flush at its own next barrier, before this line
    // would ever be re-flushed here). The releasing warp resumes once
    // every PM flag acknowledged.
    auto wait = std::make_shared<std::uint32_t>(0);
    for (const ReleaseFlag &f : flags) {
        if (!addr_map::isNvm(f.addr)) {
            if (sm_.trace() && f.relId != 0)
                sm_.trace()->publishRel(f.addr, f.relId);
            sm_.mem().write32(f.addr, f.value);
            continue;
        }
        ++*wait;
        std::vector<std::uint64_t> ids;
        if (sm_.trace() && f.persistId != 0)
            ids.push_back(f.persistId);
        std::uint64_t seq = ++flushSeq_;
        outstanding_.insert(seq);
        ++actr_;
        std::uint64_t op_id = 0;
        if (auto *prov = sm_.provenance()) {
            Cycle issue = sm_.now();
            op_id = prov->beginOp(sm_.smId(), f.addr, Scope::Device,
                                  provEpoch_, issue);
            prov->markFlush(op_id, issue);
            if (tb_)
                tb_->flowStart("persist", op_id);
        }
        sm_.fabric().persistWriteWord(f.addr, f.value, std::move(ids),
                                      sm_.now(),
                                      [this, f, wait, slot, seq,
                                       op_id](const PersistResult &r) {
            sm_.noteAsyncActivity();
            if (sm_.trace() && f.relId != 0 && r.ok)
                sm_.trace()->publishRel(f.addr, f.relId);
            sm_.mem().write32(f.addr, f.value);
            sbrp_assert(actr_ > 0, "flag ack underflow");
            --actr_;
            outstanding_.erase(seq);
            if (tb_ && op_id != 0)
                tb_->flowEnd("persist", op_id);
            if (--*wait == 0)
                sm_.resumeWarp(slot);
            onAck();
        }, op_id);
    }
    if (*wait == 0)
        sm_.resumeWarp(slot);
}

HookResult
ScopedBarrierModel::pRel(Warp &warp, std::vector<ReleaseFlag> flags,
                         Scope scope)
{
    (void)scope;
    // Barrier first; the released value publishes when it completes, so
    // acquirers never observe a value whose predecessors are volatile.
    std::uint64_t seq = barrier();
    bool pm_flags = false;
    for (const ReleaseFlag &f : flags)
        pm_flags |= addr_map::isNvm(f.addr);

    if (outstanding_.empty() && !pm_flags) {
        // Nothing to wait for: publish the volatile flags inline.
        for (const ReleaseFlag &f : flags) {
            if (sm_.trace() && f.relId != 0)
                sm_.trace()->publishRel(f.addr, f.relId);
            sm_.mem().write32(f.addr, f.value);
        }
        return HookResult::Proceed;
    }

    waiters_.push_back(Waiter{warp.slot(), seq, std::move(flags)});
    if (outstanding_.empty())
        onAck();   // Starts the PM flag persists right away.
    return HookResult::StallComplete;
}

void
ScopedBarrierModel::pAcqSuccess(Warp &warp, const WarpInstr &in)
{
    (void)warp;
    // The barrier model communicates globally: invalidate cached PM so
    // post-acquire reads cannot be stale, regardless of scope.
    if (in.scope != Scope::Block) {
        std::vector<Addr> clean;
        sm_.l1().forEachLine([&](L1Cache::Line &l) {
            if (l.isPm && !l.dirty)
                clean.push_back(l.lineAddr);
        });
        for (Addr a : clean)
            sm_.l1().invalidate(a);
    }
}

bool
ScopedBarrierModel::mayEvictPm(Warp &warp, const L1Cache::Line &victim)
{
    (void)warp;
    (void)victim;
    return true;   // No cross-line ordering is ever buffered.
}

void
ScopedBarrierModel::evictPmNow(const L1Cache::Line &victim)
{
    flushPmTracked(victim.lineAddr);
}

void
ScopedBarrierModel::tick(Cycle now)
{
    // Ack-driven like the epoch model: DrainState stays Idle and the
    // SM sleeps between acknowledgements.
    (void)now;
}

void
ScopedBarrierModel::drainAll()
{
    barrier();
}

bool
ScopedBarrierModel::drained() const
{
    return outstanding_.empty();
}

void
ScopedBarrierModel::onAck()
{
    std::uint64_t min_seq = minOutstanding();
    std::vector<Waiter> ready;
    std::vector<Waiter> keep;
    for (Waiter &w : waiters_) {
        if (min_seq > w.barrierSeq)
            ready.push_back(std::move(w));
        else
            keep.push_back(std::move(w));
    }
    waiters_ = std::move(keep);
    for (Waiter &w : ready) {
        if (w.flags.empty())
            sm_.resumeWarp(w.slot);
        else
            publishFlags(w.flags, w.slot);
    }
}

} // namespace sbrp
