/**
 * @file
 * Scoped persist barriers (Gope et al. [14], discussed in the paper's
 * Section 8): the closest prior GPU persistency proposal and this
 * library's related-work comparator.
 *
 * Under this model every SBRP ordering operation degenerates to a
 * persist *barrier*: the issuing warp stalls, its SM's buffered persists
 * drain, and execution resumes only when the writes reached the
 * persistence domain. There is no distinction between intra- and
 * inter-thread PMO and no deferred buffering across ordering points —
 * which is exactly the contrast the paper draws: "A persist barrier
 * simply stalls the issuing thread, drains the buffer, and waits for
 * the writes to reach PM. In SBRP, the buffers allow intra- and
 * inter-thread PMO to proceed without global synchronization."
 *
 * Applications written for SBRP run unmodified: oFence, dFence, pAcq
 * and pRel all map onto the barrier (releases publish their value after
 * the barrier completes, so acquire/release sequencing still works).
 */

#ifndef SBRP_PERSIST_BARRIER_MODEL_HH
#define SBRP_PERSIST_BARRIER_MODEL_HH

#include <memory>
#include <set>
#include <vector>

#include "persist/model.hh"

namespace sbrp
{

class ScopedBarrierModel : public PersistencyModel
{
  public:
    ScopedBarrierModel(const SystemConfig &cfg, SmServices &sm,
                       StatGroup &stats);

    HookResult persistStore(Warp &warp, const WarpInstr &in,
                            const std::vector<Addr> &lines) override;
    HookResult fence(Warp &warp, Scope scope) override;
    HookResult oFence(Warp &warp) override;
    HookResult dFence(Warp &warp) override;
    HookResult pRel(Warp &warp, std::vector<ReleaseFlag> flags,
                    Scope scope) override;
    void pAcqSuccess(Warp &warp, const WarpInstr &in) override;
    bool mayEvictPm(Warp &warp, const L1Cache::Line &victim) override;
    void evictPmNow(const L1Cache::Line &victim) override;
    void tick(Cycle now) override;
    void drainAll() override;
    bool drained() const override;

    /** Every barrier-model stall is the issuing warp waiting out its
        persist barrier's drain. */
    const char *
    stallReason(std::uint32_t slot) const override
    {
        (void)slot;
        return "stall:fence_drain";
    }

  protected:
    void onAck() override;

  private:
    struct Waiter
    {
        WarpSlot slot;
        std::uint64_t barrierSeq;
        std::vector<ReleaseFlag> flags;   ///< Published on completion.
    };

    /** Flushes every dirty PM line; returns the barrier sequence. */
    std::uint64_t barrier();

    /** Publishes released values; PM flags persist before visibility,
        and the warp resumes once they acknowledge. */
    void publishFlags(const std::vector<ReleaseFlag> &flags,
                      WarpSlot slot);

    void flushPmTracked(Addr line_addr);
    std::uint64_t minOutstanding() const;

    std::vector<Waiter> waiters_;
    std::uint64_t flushSeq_ = 0;
    std::set<std::uint64_t> outstanding_;
};

} // namespace sbrp

#endif // SBRP_PERSIST_BARRIER_MODEL_HH
