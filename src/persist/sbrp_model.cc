#include "persist/sbrp_model.hh"

#include <algorithm>
#include <cstring>
#include <limits>
#include <utility>

#include "common/log.hh"
#include "common/trace.hh"
#include "formal/trace.hh"
#include "gpu/mem_ctrl.hh"
#include "gpu/warp.hh"
#include "mem/address_map.hh"
#include "mem/functional_mem.hh"
#include "obs/provenance.hh"
#include "sim/scheduler.hh"

namespace sbrp
{

namespace
{
/** Trace track for PB lifecycle instants (warp slots own 0..31). */
constexpr std::uint32_t kPbTrack = 32;
} // namespace

SbrpModel::SbrpModel(const SystemConfig &cfg, SmServices &sm,
                     StatGroup &stats)
    : PersistencyModel(cfg, sm, stats), pb_(cfg.pbEntries())
{
    stallReason_.fill("stall:model");
    stFsmBlockCycles_ = &stats_.stat("fsm_drain_block_cycles");
    stActrBlockCycles_ = &stats_.stat("actr_drain_block_cycles");
    dAckLatency_ = &stats_.dist("persist_ack_cycles");
    dResidency_ = &stats_.dist("pb_residency_cycles");
    dFlushBatch_ = &stats_.dist("flush_batch");
}

void
SbrpModel::setTraceBuffer(TraceBuffer *tb)
{
    PersistencyModel::setTraceBuffer(tb);
    pb_.setTrace(tb);
}

std::uint32_t
SbrpModel::allowance() const
{
    switch (cfg_.flushPolicy) {
      case FlushPolicy::Eager:
        return std::numeric_limits<std::uint32_t>::max();
      case FlushPolicy::Lazy:
        return 0;
      case FlushPolicy::Window:
        return cfg_.window;
    }
    return cfg_.window;
}

void
SbrpModel::requestDrainThrough(std::uint64_t id)
{
    if (id > drainUntil_)
        drainUntil_ = id;
}

std::uint64_t
SbrpModel::minOutstanding() const
{
    if (outstanding_.empty())
        return std::numeric_limits<std::uint64_t>::max();
    return *outstanding_.begin();
}

void
SbrpModel::flushTracked(Addr line_addr, Cycle admit, std::uint64_t op_id)
{
    std::uint64_t seq = ++flushSeq_;
    outstanding_.insert(seq);
    sm_.l1().invalidate(line_addr);
    ++actr_;
    stats_.stat("flushes").inc();
    Cycle issue = sm_.now();
    if (admit != 0)
        dResidency_->record(issue - admit);
    if (auto *prov = sm_.provenance())
        prov->markFlush(op_id, issue);
    if (tb_) {
        tb_->instant("pb:flush", kPbTrack);
        if (op_id != 0)
            tb_->flowStep("persist", op_id, kPbTrack);
    }
    // The nack/retry machine inside the fabric retires faulted persists
    // too (PersistFault on budget exhaustion), so the ACTR always drops
    // and the drain engine never wedges on an injected fault.
    sm_.fabric().persistWrite(line_addr, issue,
                              [this, seq, issue,
                               op_id](const PersistResult &) {
        sm_.noteAsyncActivity();
        sbrp_assert(actr_ > 0, "ack with ACTR already zero");
        --actr_;
        outstanding_.erase(seq);
        // sm_.now() lags one cycle inside event callbacks; close enough
        // for the latency histogram.
        dAckLatency_->record(sm_.now() - issue);
        if (tb_) {
            tb_->instant("pb:ack", kPbTrack);
            if (op_id != 0)
                tb_->flowEnd("persist", op_id, kPbTrack);
        }
        onAck();
    }, op_id);
}

void
SbrpModel::noteOrderingPoint(WarpMask warps)
{
    if (cfg_.preciseFsm) {
        if (outstanding_.empty())
            return;   // No unacknowledged flushes: no hazard to track.
        fsm_ |= warps;
        for (std::uint32_t w = 0; w < 32; ++w) {
            if (warps.test(w))
                barrierSeq_[w] = flushSeq_;
        }
    } else {
        fsm_ |= warps;
    }
}

bool
SbrpModel::fsmWouldAllowFlush(WarpMask warps) const
{
    if (cfg_.unsafeRelaxedPersistOrder)
        return true;
    WarpMask hazard = warps & fsm_;
    if (hazard.empty())
        return true;
    if (!cfg_.preciseFsm)
        return actr_ == 0;
    for (std::uint32_t w = 0; w < 32; ++w) {
        if (hazard.test(w) && !barrierPassed(barrierSeq_[w]))
            return false;
    }
    return true;
}

bool
SbrpModel::fsmAllowsFlush(WarpMask warps)
{
    if (cfg_.unsafeRelaxedPersistOrder)
        return true;   // Fault injection: ignore the flush hazard.
    WarpMask hazard = warps & fsm_;
    if (hazard.empty())
        return true;

    if (!cfg_.preciseFsm) {
        // Paper's single-ACTR variant: wait for a full quiesce.
        if (actr_ > 0)
            return false;
        fsm_.clearAll();
        return true;
    }

    bool blocked = false;
    for (std::uint32_t w = 0; w < 32; ++w) {
        if (!hazard.test(w))
            continue;
        if (barrierPassed(barrierSeq_[w]))
            fsm_.clear(w);
        else
            blocked = true;
    }
    return !blocked;
}

HookResult
SbrpModel::admitLines(Warp &warp, const std::vector<Addr> &lines)
{
    WarpMask wm = WarpMask::single(warp.slot());

    // --- Validate: every line must be acceptable before any change. ---
    std::uint32_t new_entries = 0;
    std::uint32_t slot = warp.slot();
    for (Addr line : lines) {
        L1Cache::Line *l = sm_.l1().probe(line);
        if (l && l->isPm && l->dirty && l->pbEntry != kNoPbEntry) {
            // A warp stalled on this entry stays stalled until the line
            // is flushed (paper: "until PBk is persisted") — skip the
            // hazard recomputation on retries.
            if (stallEntry_[slot] == l->pbEntry) {
                stats_.stat("coalesce_stalls").inc();
                stallReason_[slot] = "stall:edm_coalesce";
                return HookResult::StallRetry;
            }
            // Coalescing past one of this warp's ordering points is
            // only a PMO hazard when the warp has *other* buffered
            // persists the new store must follow; a lone entry commits
            // atomically with the new data (this is what keeps a
            // threadblock's reduction inside the L1, Section 7.2).
            // Acquire-derived ordering additionally forbids merging
            // into entries at or below the warp's acquire boundary —
            // the released data may sit after them in the FIFO — except
            // into the acquired line itself (atomic with the release).
            bool acq_hazard = false;
            if (l->pbEntry <= acqBoundary_[slot]) {
                acq_hazard = std::find(acqLines_[slot].begin(),
                                       acqLines_[slot].end(), line) ==
                             acqLines_[slot].end();
            }
            if (pb_.orderingAfter(l->pbEntry, wm) &&
                    (acq_hazard ||
                     pb_.coalesceHazard(l->pbEntry, warp.slot()))) {
                edm_ |= wm;
                stats_.stat("coalesce_stalls").inc();
                stallReason_[slot] = "stall:edm_coalesce";
                requestDrainThrough(l->pbEntry);
                stallEntry_[slot] = l->pbEntry;
                return HookResult::StallRetry;
            }
            continue;
        }
        ++new_entries;
        if (!l) {
            L1Cache::Line *victim = sm_.l1().victimFor(line);
            if (victim && victim->dirty && victim->isPm &&
                    !mayEvictPm(warp, *victim)) {
                stallReason_[slot] = "stall:edm_evict";
                return HookResult::StallRetry;
            }
        }
    }
    // Admission: a full buffer stalls the warp until the drain frees
    // room. One instruction's line set is admitted as a unit once there
    // is any room (a warp-wide store may touch up to 32 lines — an
    // atomic all-or-nothing check would deadlock when the PB is smaller
    // than the instruction's footprint), so the PB may briefly overshoot
    // its nominal capacity, as hardware write-combining queues do.
    if (new_entries > 0 && pb_.persistCount() >= pb_.capacity()) {
        edm_ |= wm;
        stats_.stat("pb_full_stalls").inc();
        stallReason_[slot] = "stall:edm_pb_full";
        requestDrainThrough(pb_.lastId());
        return HookResult::StallRetry;
    }
    edm_.clear(slot);
    stallEntry_[slot] = 0;
    return HookResult::Proceed;
}

void
SbrpModel::performLines(Warp &warp, const std::vector<Addr> &lines,
                        const std::function<void(Addr)> &write)
{
    WarpMask wm = WarpMask::single(warp.slot());
    for (Addr line : lines) {
        L1Cache::Line *l = sm_.l1().probe(line);
        if (l && l->isPm && l->dirty && l->pbEntry != kNoPbEntry) {
            sm_.l1().lookup(line, sm_.now());
            pb_.coalesce(l->pbEntry, wm);
            stats_.stat("coalesced_persists").inc();
            if (auto *prov = sm_.provenance()) {
                if (PersistBuffer::Entry *e = pb_.find(l->pbEntry))
                    prov->noteMerge(e->opId);
            }
            write(line);
            continue;
        }
        if (!l) {
            L1Cache::Line *victim = sm_.l1().victimFor(line);
            if (victim && victim->dirty) {
                if (victim->isPm)
                    evictPmNow(*victim);
                else
                    sm_.fabric().volatileWriteback(victim->lineAddr,
                                                   sm_.now());
            }
            L1Cache::Eviction ev;
            l = sm_.l1().allocate(line, sm_.now(), &ev);
        } else {
            sm_.l1().lookup(line, sm_.now());
        }
        l->dirty = true;
        l->isPm = true;
        l->pbEntry = pb_.pushPersist(line, wm, sm_.now());
        if (auto *prov = sm_.provenance()) {
            // SBRP line persists are block-scoped by construction: the
            // FIFO + FSM order them within the issuing threadblock.
            PersistBuffer::Entry *e = pb_.find(l->pbEntry);
            e->opId = prov->beginOp(sm_.smId(), line, Scope::Block,
                                    provEpoch_, sm_.now());
            if (tb_)
                tb_->flowStart("persist", e->opId, kPbTrack);
        }
        if (tb_)
            tb_->instant("pb:admit", kPbTrack);
        // Write the line's data (functional + trace) *now*: a later
        // line of this instruction may capacity-evict this one.
        write(line);
    }
}

HookResult
SbrpModel::persistStore(Warp &warp, const WarpInstr &in,
                        const std::vector<Addr> &lines)
{
    HookResult r = admitLines(warp, lines);
    if (r != HookResult::Proceed)
        return r;

    performLines(warp, lines, [&](Addr line) {
        std::uint32_t eff = warp.effActive(in);
        for (std::uint32_t l = 0; l < 32; ++l) {
            if (!(eff & (1u << l)))
                continue;
            Addr a = warp.effAddr(in, l);
            if (addr_map::lineBase(a, cfg_.lineBytes) != line)
                continue;
            sm_.mem().write32(a, warp.operand(in, l));
            if (sm_.trace()) {
                std::uint64_t id = sm_.trace()->recordPersist(
                    warp.thread(l), warp.block(), a);
                sm_.trace()->notePendingStore(line, id);
            }
        }
    });
    return HookResult::Proceed;
}

HookResult
SbrpModel::fence(Warp &warp, Scope scope)
{
    // Conventional scoped fences affect PM writes too (Section 5.2); the
    // strongest reading is a durability fence for the issuing warp.
    (void)scope;
    return dFence(warp);
}

HookResult
SbrpModel::oFence(Warp &warp)
{
    WarpMask wm = WarpMask::single(warp.slot());
    std::uint64_t id = pb_.pushOrder(PbType::OFence, wm, {}, sm_.now());
    ++provEpoch_;
    if (cfg_.flushPolicy == FlushPolicy::Lazy)
        requestDrainThrough(id);   // Lazy: flush only at ordering points.
    stats_.stat("ofences").inc();
    return HookResult::Proceed;
}

HookResult
SbrpModel::dFence(Warp &warp)
{
    WarpMask wm = WarpMask::single(warp.slot());
    std::uint64_t id = pb_.pushOrder(PbType::DFence, wm, {}, sm_.now());
    ++provEpoch_;
    odm_ |= wm;
    requestDrainThrough(id);
    stats_.stat("dfences").inc();
    drain();
    if (!odm_.overlaps(wm) && !edm_.overlaps(wm))
        return HookResult::Proceed;   // Everything already durable.
    stallReason_[warp.slot()] = "stall:odm_dfence";
    return HookResult::StallComplete;
}

HookResult
SbrpModel::pRel(Warp &warp, std::vector<ReleaseFlag> flags, Scope scope)
{
    WarpMask wm = WarpMask::single(warp.slot());
    if (scope == Scope::Block) {
        // Buffered release: the released variable's write behaves like a
        // normal persist store (it lands dirty in the L1 with a PB
        // entry, so same-block acquirers hit in the L1 — this is what
        // lets a threadblock's reduction run out of the L1, Section
        // 7.2), and a RelBlock marker records the ordering point. The
        // value publishes immediately; durability order is enforced
        // lazily by the FIFO drain + FSM. The SM performs the
        // functional flag writes after Proceed.
        std::vector<Addr> pm_lines;
        for (const ReleaseFlag &f : flags) {
            if (!addr_map::isNvm(f.addr))
                continue;
            Addr line = addr_map::lineBase(f.addr, cfg_.lineBytes);
            if (std::find(pm_lines.begin(), pm_lines.end(), line) ==
                    pm_lines.end()) {
                pm_lines.push_back(line);
            }
        }
        if (!pm_lines.empty()) {
            HookResult r = admitLines(warp, pm_lines);
            if (r != HookResult::Proceed)
                return r;
        }

        // Publish the volatile flags and perform the PM flag writes
        // (data + trace), line by line.
        for (const ReleaseFlag &f : flags) {
            if (addr_map::isNvm(f.addr))
                continue;
            if (sm_.trace()) {
                std::uint64_t rid = sm_.trace()->recordRel(
                    f.tid, f.block, f.addr, Scope::Block);
                sm_.trace()->publishRel(f.addr, rid);
            }
            sm_.mem().write32(f.addr, f.value);
        }
        if (!pm_lines.empty()) {
            performLines(warp, pm_lines, [&](Addr line) {
                for (const ReleaseFlag &f : flags) {
                    if (!addr_map::isNvm(f.addr) ||
                            addr_map::lineBase(f.addr, cfg_.lineBytes) !=
                                line) {
                        continue;
                    }
                    sm_.mem().write32(f.addr, f.value);
                    if (sm_.trace()) {
                        std::uint64_t pid = sm_.trace()->recordPersist(
                            f.tid, f.block, f.addr);
                        sm_.trace()->notePendingStore(line, pid);
                        std::uint64_t rid = sm_.trace()->recordRel(
                            f.tid, f.block, f.addr, Scope::Block);
                        sm_.trace()->publishRel(f.addr, rid);
                    }
                }
            });
        }
        std::uint64_t id = pb_.pushOrder(PbType::RelBlock, wm, {},
                                         sm_.now());
        ++provEpoch_;
        if (cfg_.flushPolicy == FlushPolicy::Lazy)
            requestDrainThrough(id);
        stats_.stat("rel_block").inc();
        return HookResult::Proceed;
    }

    // Device scope: stall the warp (ODM), drain eagerly, publish the
    // flag only once every prior persist is durable.
    std::uint64_t id = pb_.pushOrder(PbType::RelDev, wm, std::move(flags),
                                     sm_.now());
    ++provEpoch_;
    odm_ |= wm;
    requestDrainThrough(id);
    stats_.stat("rel_dev").inc();
    drain();
    if (!odm_.overlaps(wm) && !edm_.overlaps(wm))
        return HookResult::Proceed;
    stallReason_[warp.slot()] = "stall:odm_rel_dev";
    return HookResult::StallComplete;
}

void
SbrpModel::pAcqSuccess(Warp &warp, const WarpInstr &in)
{
    Scope scope = in.scope;
    WarpMask wm = WarpMask::single(warp.slot());

    // Record the acquire boundary and the acquired PM lines before
    // pushing the marker (the marker's own id is irrelevant).
    std::uint32_t slot = warp.slot();
    acqBoundary_[slot] = pb_.lastId();
    acqLines_[slot].clear();
    std::uint32_t eff = warp.effActive(in);
    for (std::uint32_t l = 0; l < 32; ++l) {
        if (!(eff & (1u << l)))
            continue;
        Addr a = warp.effAddr(in, l);
        if (!addr_map::isNvm(a))
            continue;
        Addr line = addr_map::lineBase(a, cfg_.lineBytes);
        if (std::find(acqLines_[slot].begin(), acqLines_[slot].end(),
                      line) == acqLines_[slot].end()) {
            acqLines_[slot].push_back(line);
        }
    }

    pb_.pushOrder(scope == Scope::Block ? PbType::AcqBlock
                                        : PbType::AcqDev, wm, {},
                  sm_.now());
    stats_.stat(scope == Scope::Block ? "acq_block" : "acq_dev").inc();

    if (scope != Scope::Block) {
        // Device-scoped acquire: drop (clean) PM lines so reads observe
        // the releaser's data through the shared L2, not a stale copy.
        std::vector<Addr> clean;
        sm_.l1().forEachLine([&](L1Cache::Line &l) {
            if (l.isPm && !l.dirty)
                clean.push_back(l.lineAddr);
        });
        for (Addr a : clean)
            sm_.l1().invalidate(a);
        stats_.stat("acq_invalidations").inc(clean.size());
    }
}

bool
SbrpModel::mayEvictPm(Warp &warp, const L1Cache::Line &victim)
{
    sbrp_assert(victim.pbEntry != kNoPbEntry,
                "dirty PM line without a PB entry");
    PersistBuffer::Entry *e = pb_.find(victim.pbEntry);
    sbrp_assert(e && e->valid, "dirty PM line with a stale PB entry");
    if (cfg_.unsafeRelaxedPersistOrder)
        return true;   // Fault injection: ignore the eviction veto.
    if (pb_.orderingBefore(e->id, e->warps)) {
        // Flushing now would persist this line ahead of writes it is
        // ordered after. Stall the evicting warp (EDM) and drain.
        edm_ |= WarpMask::single(warp.slot());
        stats_.stat("evict_veto").inc();
        stallReason_[warp.slot()] = "stall:edm_evict";
        requestDrainThrough(e->id);
        return false;
    }
    return true;
}

void
SbrpModel::evictPmNow(const L1Cache::Line &victim)
{
    sbrp_assert(victim.pbEntry != kNoPbEntry,
                "evicting dirty PM line without a PB entry");
    PersistBuffer::Entry *e = pb_.find(victim.pbEntry);
    Cycle admit = e ? e->admitCycle : 0;
    std::uint64_t op = e ? e->opId : 0;
    pb_.invalidate(victim.pbEntry);
    stats_.stat("capacity_evictions").inc();
    flushTracked(victim.lineAddr, admit, op);
}

void
SbrpModel::drain()
{
    std::uint32_t flushed = 0;
    const auto done = [&]() {
        if (flushed > 0)
            dFlushBatch_->record(flushed);
    };
    while (PersistBuffer::Entry *h = pb_.head()) {
        switch (h->type) {
          case PbType::Persist: {
            if (!fsmAllowsFlush(h->warps)) {
                // Blocked cycles accumulate once per drain attempt
                // (drain runs every tick), approximating stall time.
                stFsmBlockCycles_->inc();
                // First-wins: the op's FSM hold starts at the first
                // blocked drain attempt (drainState() probes during a
                // sleep never reach here, so recording stays exact).
                if (auto *prov = sm_.provenance())
                    prov->markFsmBlocked(h->opId, sm_.now());
                done();
                return;   // Wait for the hazard's acks.
            }
            bool forced = h->id <= drainUntil_;
            if (!forced && actr_ >= allowance()) {
                stActrBlockCycles_->inc();
                done();
                return;
            }
            // Model-checking choice point: the flush has passed the
            // model's own hazard checks, so deferring it is a legal
            // timing perturbation (it can only delay, never reorder,
            // the FIFO drain). The controller bounds deferral so the
            // drain always terminates.
            if (ScheduleController *ctl = sm_.scheduleController()) {
                if (!ctl->allowFlush(sm_.smId(), h->id, h->lineAddr,
                                     sm_.now())) {
                    done();
                    return;
                }
            }
            Addr line = h->lineAddr;
            Cycle admit = h->admitCycle;
            std::uint64_t op = h->opId;
            pb_.popHead();
            flushTracked(line, admit, op);
            ++flushed;
            break;
          }
          case PbType::OFence:
          case PbType::AcqBlock:
          case PbType::AcqDev:
            noteOrderingPoint(h->warps);
            pb_.popHead();
            break;
          case PbType::RelBlock:
            // A release imposes no PMO on the *releaser's* later
            // persists (Box 2): the inter-thread edge is enforced on
            // the acquirer side — its Acq entry pops after the
            // releaser's pre-release entries flushed (FIFO), so the
            // acquirer's barrier covers their acks. No FSM bits here.
            pb_.popHead();
            break;
          case PbType::DFence:
          case PbType::RelDev: {
            PendingDurability p;
            p.warps = h->warps;
            p.flags = std::move(h->flags);
            p.barrierSeq = flushSeq_;
            odm_ &= ~p.warps;
            edm_ |= p.warps;
            pending_.push_back(std::move(p));
            pb_.popHead();
            settlePending();
            break;
          }
        }
    }
    done();
    if (pb_.empty())
        drainUntil_ = 0;
}

void
SbrpModel::publishFlagsDurable(const std::vector<ReleaseFlag> &flags,
                               WarpMask warps)
{
    auto wait = std::make_shared<FlagWait>();
    wait->warps = warps;

    for (const ReleaseFlag &f : flags) {
        if (!addr_map::isNvm(f.addr)) {
            if (sm_.trace() && f.relId != 0)
                sm_.trace()->publishRel(f.addr, f.relId);
            sm_.mem().write32(f.addr, f.value);
            continue;
        }
        // PM flag: persist the new value first; publish on ack so no
        // remote acquirer can observe a value that is not yet durable.
        ++wait->remaining;
        std::vector<std::uint64_t> ids;
        if (sm_.trace() && f.persistId != 0)
            ids.push_back(f.persistId);

        std::uint64_t seq = ++flushSeq_;
        outstanding_.insert(seq);
        ++actr_;
        stats_.stat("flag_persists").inc();
        Cycle issue = sm_.now();
        std::uint64_t op_id = 0;
        if (auto *prov = sm_.provenance()) {
            // Flag publications are device-scoped releases: their
            // durability is what remote acquirers synchronize on.
            op_id = prov->beginOp(sm_.smId(), f.addr, Scope::Device,
                                  provEpoch_, issue);
            prov->markFlush(op_id, issue);
            if (tb_)
                tb_->flowStart("persist", op_id, kPbTrack);
        }
        sm_.fabric().persistWriteWord(f.addr, f.value, std::move(ids),
                                      issue,
                                      [this, f, wait, seq, issue,
                                       op_id](const PersistResult &r) {
            sm_.noteAsyncActivity();
            dAckLatency_->record(sm_.now() - issue);
            if (tb_ && op_id != 0)
                tb_->flowEnd("persist", op_id, kPbTrack);
            // Publish even when the persist faulted: acquirers spinning
            // on the flag must not hang, and the PersistFault record
            // (not visibility) is the failure signal.
            if (sm_.trace() && f.relId != 0 && r.ok)
                sm_.trace()->publishRel(f.addr, f.relId);
            sm_.mem().write32(f.addr, f.value);
            if (--wait->remaining == 0)
                resumeWarps(wait->warps);
            sbrp_assert(actr_ > 0, "flag ack underflow");
            --actr_;
            outstanding_.erase(seq);
            onAck();
        }, op_id);
    }

    if (wait->remaining == 0)
        resumeWarps(warps);
}

void
SbrpModel::resumeWarps(WarpMask warps)
{
    edm_ &= ~warps;
    for (std::uint32_t s = 0; s < 32; ++s) {
        if (warps.test(s))
            sm_.resumeWarp(s);
    }
}

void
SbrpModel::settlePending()
{
    std::vector<PendingDurability> keep;
    std::vector<PendingDurability> ready;
    for (PendingDurability &p : pending_) {
        if (barrierPassed(p.barrierSeq))
            ready.push_back(std::move(p));
        else
            keep.push_back(std::move(p));
    }
    pending_ = std::move(keep);
    for (PendingDurability &p : ready)
        publishFlagsDurable(p.flags, p.warps);
}

void
SbrpModel::tick(Cycle now)
{
    (void)now;
    drain();
}

DrainState
SbrpModel::drainState()
{
    // head() may canonicalize away already-invalidated front entries;
    // that is its only side effect and it is unobservable (the next
    // drain() would perform it anyway, and it touches no counters).
    PersistBuffer::Entry *h = pb_.head();
    if (!h)
        return DrainState::Idle;
    if (h->type != PbType::Persist)
        return DrainState::Workable;   // Ordering markers always pop.
    if (!fsmWouldAllowFlush(h->warps))
        return DrainState::BlockedFsm;
    if (h->id > drainUntil_ && actr_ >= allowance())
        return DrainState::BlockedActr;
    return DrainState::Workable;
}

void
SbrpModel::accrueIdleCycles(Cycle n)
{
    // One blocked drain attempt per skipped tick, exactly as the
    // cycle-stepped engine accumulated them. Workable never persists
    // across a sleep (the SM ticks next cycle instead), and Idle ticks
    // touched nothing.
    switch (drainState()) {
      case DrainState::BlockedFsm:
        stFsmBlockCycles_->inc(n);
        break;
      case DrainState::BlockedActr:
        stActrBlockCycles_->inc(n);
        break;
      case DrainState::Idle:
      case DrainState::Workable:
        break;
    }
}

void
SbrpModel::drainAll()
{
    requestDrainThrough(pb_.lastId());
    drain();
}

bool
SbrpModel::drained() const
{
    return pb_.empty() && actr_ == 0 && pending_.empty();
}

void
SbrpModel::onAck()
{
    if (!cfg_.preciseFsm && actr_ == 0)
        fsm_.clearAll();
    settlePending();
    drain();
}

} // namespace sbrp
