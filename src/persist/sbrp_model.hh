/**
 * @file
 * Scoped Buffered Release Persistency (Sections 5 and 6 of the paper).
 *
 * Per-SM hardware state:
 *  - a FIFO persist buffer (PB) tracking persists per warp,
 *  - ODM (order delay mask): warps stalled enforcing ordering
 *    (dFence / device-scoped pRel),
 *  - EDM (eviction delay mask): warps stalled because an eviction or a
 *    coalescing attempt would violate PMO,
 *  - FSM (flush status mask): warps whose flushed persists are still
 *    unacknowledged — later persists from those warps wait,
 *  - ACTR: count of flushed, unacknowledged persists.
 *
 * Flush scheduling follows cfg.flushPolicy: the window policy (default)
 * keeps `window` persists outstanding; eager flushes whenever ordering
 * allows; lazy flushes only when an ordering operation demands it.
 *
 * FSM hazard precision (cfg.preciseFsm): with the paper's single ACTR,
 * an FSM-blocked persist waits for a full quiesce (ACTR == 0). The
 * precise variant tags every flush with a sequence number and records,
 * per warp, the last flush issued before its ordering point; a blocked
 * persist then waits only for those earlier flushes to ack. Both
 * variants are implemented; the figure10c binary ablates them.
 */

#ifndef SBRP_PERSIST_SBRP_MODEL_HH
#define SBRP_PERSIST_SBRP_MODEL_HH

#include <array>
#include <memory>
#include <set>
#include <vector>

#include "common/bitmask.hh"
#include "persist/model.hh"
#include "persist/persist_buffer.hh"

namespace sbrp
{

class SbrpModel : public PersistencyModel
{
  public:
    SbrpModel(const SystemConfig &cfg, SmServices &sm, StatGroup &stats);

    HookResult persistStore(Warp &warp, const WarpInstr &in,
                            const std::vector<Addr> &lines) override;
    HookResult fence(Warp &warp, Scope scope) override;
    HookResult oFence(Warp &warp) override;
    HookResult dFence(Warp &warp) override;
    HookResult pRel(Warp &warp, std::vector<ReleaseFlag> flags,
                    Scope scope) override;
    void pAcqSuccess(Warp &warp, const WarpInstr &in) override;
    bool mayEvictPm(Warp &warp, const L1Cache::Line &victim) override;
    void evictPmNow(const L1Cache::Line &victim) override;
    void tick(Cycle now) override;
    void drainAll() override;
    bool drained() const override;
    DrainState drainState() override;
    void accrueIdleCycles(Cycle n) override;

    /** Propagates the trace buffer into the PB's occupancy track. */
    void setTraceBuffer(TraceBuffer *tb) override;

    /** Last recorded model-stall reason of a warp slot (trace spans). */
    const char *stallReason(std::uint32_t slot) const override
    { return stallReason_[slot]; }

    std::uint32_t pbOccupancy() const override { return pb_.size(); }

    // --- Introspection (tests) ---
    const PersistBuffer &pb() const { return pb_; }
    WarpMask odm() const { return odm_; }
    WarpMask edm() const { return edm_; }
    WarpMask fsm() const { return fsm_; }

  protected:
    void onAck() override;

  private:
    /** Warps parked until their durability barrier clears, plus flags
        to publish afterwards (dFence / device-scoped pRel). */
    struct PendingDurability
    {
        WarpMask warps;
        std::vector<ReleaseFlag> flags;
        std::uint64_t barrierSeq = 0;   ///< Flushes <= this must ack.
    };

    /** Device-scoped release whose PM flag write must ack first. */
    struct FlagWait
    {
        WarpMask warps;
        std::uint32_t remaining = 0;
    };

    /** Validate phase: may these lines be admitted right now? */
    HookResult admitLines(Warp &warp, const std::vector<Addr> &lines);

    /**
     * Perform phase: allocate/coalesce each line and invoke `write`
     * for it immediately (functional data + trace) before moving on.
     */
    void performLines(Warp &warp, const std::vector<Addr> &lines,
                      const std::function<void(Addr)> &write);

    /** Max persists the drain engine may keep outstanding right now. */
    std::uint32_t allowance() const;

    /** Drains the PB head as far as ordering and allowance permit. */
    void drain();

    /**
     * Flushes one line, tagging it with a flush sequence number.
     * `admit` (when nonzero) is the flushed entry's admission cycle,
     * used for the PB-residency histogram.
     */
    void flushTracked(Addr line_addr, Cycle admit = 0,
                      std::uint64_t op_id = 0);

    /** Earliest still-unacknowledged flush sequence (max if none). */
    std::uint64_t minOutstanding() const;

    /** True once every flush issued at or before `seq` has acked. */
    bool barrierPassed(std::uint64_t seq) const
    { return minOutstanding() > seq; }

    /** Records an ordering point for `warps` (FSM + barrier seqs). */
    void noteOrderingPoint(WarpMask warps);

    /**
     * Whether a persist by `warps` may flush now given the FSM; clears
     * FSM bits whose hazard has passed.
     */
    bool fsmAllowsFlush(WarpMask warps);

    /** Pure twin of fsmAllowsFlush(): same verdict, no FSM clearing
        (passed bits evaluate the same whether or not they were swept).
        Used by the drainState() scheduler probe. */
    bool fsmWouldAllowFlush(WarpMask warps) const;

    /** Settles pending durability groups whose barrier passed. */
    void settlePending();

    /**
     * Publishes a settled device-scoped release's flags. PM flag writes
     * are sent to the persistence domain first and only become visible
     * (functional write) on ack, so a remote acquirer can never act on
     * a value that is not yet durable.
     */
    void publishFlagsDurable(const std::vector<ReleaseFlag> &flags,
                             WarpMask warps);

    void resumeWarps(WarpMask warps);

    /** Force drain of everything at or before the given entry id. */
    void requestDrainThrough(std::uint64_t id);

    PersistBuffer pb_;
    WarpMask odm_;
    WarpMask edm_;
    WarpMask fsm_;
    std::uint64_t drainUntil_ = 0;
    std::vector<PendingDurability> pending_;

    std::uint64_t flushSeq_ = 0;
    std::set<std::uint64_t> outstanding_;
    std::array<std::uint64_t, 32> barrierSeq_{};

    /**
     * Acquire boundary: the last PB entry id at each warp's most recent
     * pAcq, plus the PM lines that acquire read. A post-acquire store
     * must not coalesce into an entry at or below the boundary (the
     * released data it must follow may sit between that entry and the
     * acquire) — unless the entry IS the acquired line, whose commit is
     * atomic with the released value.
     */
    std::array<std::uint64_t, 32> acqBoundary_{};
    std::array<std::vector<Addr>, 32> acqLines_{};

    /** Coalesce-stall memo: the PB entry that blocked each warp. The
        paper stalls the warp "until PBk is persisted", so retries can
        short-circuit while that entry still tracks the line. */
    std::array<std::uint64_t, 32> stallEntry_{};

    /** Last model-stall reason per slot (static strings; trace spans). */
    std::array<const char *, 32> stallReason_;

    // Hot-path stats, resolved once (StatGroup lookups are string-keyed).
    Stat *stFsmBlockCycles_ = nullptr;
    Stat *stActrBlockCycles_ = nullptr;
    Distribution *dAckLatency_ = nullptr;
    Distribution *dResidency_ = nullptr;
    Distribution *dFlushBatch_ = nullptr;
};

} // namespace sbrp

#endif // SBRP_PERSIST_SBRP_MODEL_HH
