#include "persist/persist_buffer.hh"

#include <algorithm>
#include <utility>

#include "common/trace.hh"

namespace sbrp
{

const char *
toString(PbType t)
{
    switch (t) {
      case PbType::Persist: return "persist";
      case PbType::OFence: return "ofence";
      case PbType::DFence: return "dfence";
      case PbType::AcqBlock: return "acq_block";
      case PbType::RelBlock: return "rel_block";
      case PbType::AcqDev: return "acq_dev";
      case PbType::RelDev: return "rel_dev";
    }
    return "?";
}

bool
isOrderingType(PbType t)
{
    return t != PbType::Persist;
}

PersistBuffer::PersistBuffer(std::uint32_t capacity) : capacity_(capacity)
{
    sbrp_assert(capacity_ > 0, "persist buffer needs capacity");
}

void
PersistBuffer::traceOccupancy()
{
    tb_->counter("pb_entries", liveEntries_);
    tb_->counter("pb_persists", persistCount_);
}

std::uint64_t
PersistBuffer::pushPersist(Addr line_addr, WarpMask warps, Cycle now)
{
    // Callers check hasSpace(); release publications may exceed the
    // nominal capacity briefly (the drain engine catches up).
    Entry e;
    e.type = PbType::Persist;
    e.warps = warps;
    e.lineAddr = line_addr;
    e.id = nextId_++;
    e.admitCycle = now;
    if (entries_.empty())
        frontId_ = e.id;
    entries_.push_back(std::move(e));
    ++liveEntries_;
    ++persistCount_;
    if (tb_)
        traceOccupancy();
    return entries_.back().id;
}

std::uint64_t
PersistBuffer::pushOrder(PbType type, WarpMask warps,
                         std::vector<ReleaseFlag> flags, Cycle now)
{
    sbrp_assert(isOrderingType(type), "pushOrder with persist type");

    // oFences coalesce with an oFence already at the tail.
    if (type == PbType::OFence && !entries_.empty() &&
            entries_.back().valid &&
            entries_.back().type == PbType::OFence) {
        entries_.back().warps |= warps;
        for (std::uint32_t w = 0; w < 32; ++w) {
            if (warps.test(w))
                lastOrderId_[w] = entries_.back().id;
        }
        return entries_.back().id;
    }

    Entry e;
    e.type = type;
    e.warps = warps;
    e.flags = std::move(flags);
    e.id = nextId_++;
    e.admitCycle = now;
    if (entries_.empty())
        frontId_ = e.id;
    entries_.push_back(std::move(e));
    ++liveEntries_;
    for (std::uint32_t w = 0; w < 32; ++w) {
        if (warps.test(w))
            lastOrderId_[w] = entries_.back().id;
    }
    if (tb_)
        traceOccupancy();
    return entries_.back().id;
}

void
PersistBuffer::coalesce(std::uint64_t id, WarpMask warps)
{
    Entry *e = find(id);
    sbrp_assert(e && e->valid && e->type == PbType::Persist,
                "coalesce into missing entry %s", id);
    e->warps |= warps;
}

PersistBuffer::Entry *
PersistBuffer::find(std::uint64_t id)
{
    if (entries_.empty() || id < frontId_ || id >= nextId_)
        return nullptr;
    return &entries_[id - frontId_];
}

bool
PersistBuffer::orderingAfter(std::uint64_t id, WarpMask warps) const
{
    for (std::uint32_t w = 0; w < 32; ++w) {
        if (warps.test(w) && lastOrderId_[w] > id)
            return true;
    }
    return false;
}

bool
PersistBuffer::orderingBefore(std::uint64_t id, WarpMask warps) const
{
    for (const Entry &e : entries_) {
        if (e.id >= id)
            break;
        if (e.valid && isOrderingType(e.type) && e.warps.overlaps(warps))
            return true;
    }
    return false;
}

bool
PersistBuffer::coalesceHazard(std::uint64_t pbk, std::uint32_t warp) const
{
    std::uint64_t last_order = lastOrderId_[warp];
    if (last_order <= pbk || entries_.empty())
        return false;   // No ordering point after the entry at all.

    // The warp's last ordering marker before pbk opens pbk's segment;
    // everything earlier is FSM-protected relative to pbk's flush.
    // Entries index directly by id (deque position = id - frontId_),
    // so both scans stay local to pbk's neighbourhood.
    std::uint64_t seg_start = frontId_ > 0 ? frontId_ - 1 : 0;
    for (std::uint64_t id = pbk; id-- > frontId_;) {
        const Entry &e = entries_[id - frontId_];
        if (e.valid && isOrderingType(e.type) && e.warps.test(warp)) {
            seg_start = e.id;
            break;
        }
    }
    std::uint64_t lo = std::max(seg_start + 1, frontId_);
    std::uint64_t hi = std::min(last_order, nextId_);
    for (std::uint64_t id = lo; id < hi; ++id) {
        if (id == pbk)
            continue;
        const Entry &e = entries_[id - frontId_];
        if (e.valid && e.type == PbType::Persist && e.warps.test(warp))
            return true;
    }
    return false;
}

void
PersistBuffer::skipInvalidHead()
{
    while (!entries_.empty() && !entries_.front().valid) {
        entries_.pop_front();
        ++frontId_;
    }
}

PersistBuffer::Entry *
PersistBuffer::head()
{
    skipInvalidHead();
    return entries_.empty() ? nullptr : &entries_.front();
}

void
PersistBuffer::popHead()
{
    skipInvalidHead();
    sbrp_assert(!entries_.empty(), "pop of empty PB");
    if (entries_.front().type == PbType::Persist)
        --persistCount_;
    entries_.pop_front();
    ++frontId_;
    --liveEntries_;
    skipInvalidHead();
    if (tb_)
        traceOccupancy();
}

void
PersistBuffer::invalidate(std::uint64_t id)
{
    Entry *e = find(id);
    sbrp_assert(e && e->valid, "invalidate of missing entry %s", id);
    e->valid = false;
    --liveEntries_;
    if (e->type == PbType::Persist)
        --persistCount_;
    skipInvalidHead();
    if (tb_)
        traceOccupancy();
}

} // namespace sbrp
