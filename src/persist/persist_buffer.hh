/**
 * @file
 * The per-SM FIFO persist buffer (PB) of Section 6.
 *
 * Entries track persists at cache-line granularity and ordering points
 * (oFence / dFence / scoped pAcq / pRel) at warp granularity via a 32-bit
 * warp bitmask — the paper's sweet spot between per-thread tracking
 * (too much hardware) and per-threadblock tracking (false ordering).
 *
 * Entries are identified by monotonically increasing ids; an L1 line's
 * `pbEntry` field stores the id of the entry tracking it. Capacity
 * evictions invalidate entries in place; invalid entries are skipped when
 * they reach the head.
 */

#ifndef SBRP_PERSIST_PERSIST_BUFFER_HH
#define SBRP_PERSIST_PERSIST_BUFFER_HH

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/bitmask.hh"
#include "common/log.hh"
#include "common/types.hh"
#include "persist/model.hh"

namespace sbrp
{

/** PB entry kinds (the 3 'Type' bits of the paper's 44-bit entry). */
enum class PbType : std::uint8_t
{
    Persist,
    OFence,
    DFence,
    AcqBlock,
    RelBlock,
    AcqDev,
    RelDev,
};

const char *toString(PbType t);

/** True for entry kinds that impose ordering on later persists. */
bool isOrderingType(PbType t);

class TraceBuffer;

class PersistBuffer
{
  public:
    struct Entry
    {
        PbType type = PbType::Persist;
        WarpMask warps;
        Addr lineAddr = 0;                 ///< Persist entries only.
        std::vector<ReleaseFlag> flags;    ///< Rel entries only.
        bool valid = true;
        std::uint64_t id = 0;
        Cycle admitCycle = 0;              ///< Cycle the entry entered.
        std::uint64_t opId = 0;            ///< Provenance op id (0 = off).
    };

    explicit PersistBuffer(std::uint32_t capacity);

    /**
     * Attaches an event-trace buffer: occupancy counters ("pb_entries",
     * "pb_persists") are emitted on every push/pop/invalidate. Null
     * (the default) disables emission entirely.
     */
    void setTrace(TraceBuffer *tb) { tb_ = tb; }

    // --- Insertion ---

    /**
     * Appends a persist entry; returns its id. Requires hasSpace().
     * `now` stamps the entry for residency accounting.
     */
    std::uint64_t pushPersist(Addr line_addr, WarpMask warps,
                              Cycle now = 0);

    /**
     * Appends an ordering entry. Consecutive oFences coalesce: if the
     * tail is already an OFence, the warp mask is merged instead of
     * allocating a new entry (paper Section 6.1). Returns the entry id.
     */
    std::uint64_t pushOrder(PbType type, WarpMask warps,
                            std::vector<ReleaseFlag> flags = {},
                            Cycle now = 0);

    /** Merges a warp into an existing persist entry (store coalescing). */
    void coalesce(std::uint64_t id, WarpMask warps);

    // --- Queries ---

    /**
     * Capacity applies to persist entries (each pins a dirty L1 line);
     * ordering entries are small and never refused.
     */
    bool hasSpace() const { return persistCount_ < capacity_; }
    bool empty() const { return liveEntries_ == 0; }
    std::uint32_t size() const { return liveEntries_; }
    std::uint32_t persistCount() const { return persistCount_; }
    std::uint32_t capacity() const { return capacity_; }

    /** Entry lookup by id; null if already popped. */
    Entry *find(std::uint64_t id);

    /**
     * True if any warp in `warps` issued an ordering operation after
     * entry `id` — the coalescing-legality check for persist stores.
     * O(1) via per-warp last-ordering-id tracking.
     */
    bool orderingAfter(std::uint64_t id, WarpMask warps) const;

    /**
     * True if a valid ordering entry with an overlapping warp mask sits
     * before entry `id` — the capacity-eviction veto (Section 6.1,
     * "Eviction"). O(PB size).
     */
    bool orderingBefore(std::uint64_t id, WarpMask warps) const;

    /** Last ordering-entry id issued by a warp slot (0 if none). */
    std::uint64_t lastOrderIdOf(std::uint32_t warp) const
    { return lastOrderId_[warp]; }

    /**
     * Coalescing hazard for a store by `warp` into entry `pbk`.
     *
     * Merging a store into its line's existing entry is PMO-safe even
     * past an ordering point as long as every persist the store must
     * follow is either (a) in that same entry — a line commit is atomic
     * — or (b) separated from `pbk` by one of this warp's ordering
     * markers, in which case the FSM already delays `pbk`'s flush until
     * those persists acknowledge. The only true hazard is a *sibling*:
     * another valid persist of this warp between the warp's last
     * ordering marker before `pbk` and its latest ordering point.
     * Cross-warp (acquire-derived) ordering is likewise FSM-covered.
     * O(PB size).
     */
    bool coalesceHazard(std::uint64_t pbk, std::uint32_t warp) const;

    /** Head entry (skipping nothing); null when empty of valid entries. */
    Entry *head();

    /** Pops the head entry. */
    void popHead();

    /** Invalidates an entry in place (capacity eviction of its line). */
    void invalidate(std::uint64_t id);

    /** Highest id ever issued (0 if none). */
    std::uint64_t lastId() const { return nextId_ - 1; }

  private:
    void skipInvalidHead();
    void traceOccupancy();

    TraceBuffer *tb_ = nullptr;
    std::uint32_t capacity_;
    std::uint32_t liveEntries_ = 0;
    std::uint32_t persistCount_ = 0;
    std::uint64_t nextId_ = 1;
    std::uint64_t frontId_ = 1;   ///< id of entries_.front(), if any.
    std::deque<Entry> entries_;
    std::array<std::uint64_t, 32> lastOrderId_{};
};

} // namespace sbrp

#endif // SBRP_PERSIST_PERSIST_BUFFER_HH
