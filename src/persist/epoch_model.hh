/**
 * @file
 * The scope-agnostic, unbuffered epoch persistency model, in two
 * flavours (Section 4, "GPM's persistency model"):
 *
 *  - GPM: the system-scope fence flushes *both* volatile and PM writes
 *    from the L1 (GPM avoided hardware changes, so its epoch barrier is
 *    a plain __threadfence_system).
 *  - Epoch: the enhanced barrier only affects writes to PM.
 *
 * Both stall the fencing warp until every initiated flush is accepted by
 * the persistence domain, and invalidate the L1's PM lines so post-epoch
 * reads cannot see stale data (required for inter-threadblock PMO).
 */

#ifndef SBRP_PERSIST_EPOCH_MODEL_HH
#define SBRP_PERSIST_EPOCH_MODEL_HH

#include <set>
#include <vector>

#include "gpu/isa.hh"
#include "persist/model.hh"

namespace sbrp
{

class EpochModel : public PersistencyModel
{
  public:
    EpochModel(const SystemConfig &cfg, SmServices &sm, StatGroup &stats,
               FenceSemantics semantics);

    HookResult persistStore(Warp &warp, const WarpInstr &in,
                            const std::vector<Addr> &lines) override;
    HookResult fence(Warp &warp, Scope scope) override;
    HookResult oFence(Warp &warp) override;
    HookResult dFence(Warp &warp) override;
    HookResult pRel(Warp &warp, std::vector<ReleaseFlag> flags,
                    Scope scope) override;
    void pAcqSuccess(Warp &warp, const WarpInstr &in) override;
    bool mayEvictPm(Warp &warp, const L1Cache::Line &victim) override;
    void evictPmNow(const L1Cache::Line &victim) override;
    void tick(Cycle now) override;
    void drainAll() override;
    bool drained() const override;

    /** The only epoch-model stall parks a fencing warp until its
        barrier's flushes drain. */
    const char *
    stallReason(std::uint32_t slot) const override
    {
        (void)slot;
        return "stall:fence_drain";
    }

  protected:
    void onAck() override;

  private:
    /** A fencing warp waiting for its barrier's flushes to complete. */
    struct Waiter
    {
        WarpSlot slot;
        std::uint64_t barrierSeq;
    };

    /** Flush dirty PM (and, for GPM, volatile) lines; invalidate PM. */
    std::uint32_t flushEpoch();

    /** Tagged flush helpers (epoch fences wait per-barrier, like a
        __threadfence: only flushes issued up to the fence matter). */
    void flushPmTracked(Addr line_addr);
    void flushVolatileTracked(Addr line_addr);
    std::uint64_t minOutstanding() const;

    FenceSemantics semantics_;
    std::vector<Waiter> waiters_;
    std::uint64_t flushSeq_ = 0;
    std::set<std::uint64_t> outstanding_;
};

} // namespace sbrp

#endif // SBRP_PERSIST_EPOCH_MODEL_HH
