#include "persist/epoch_model.hh"

#include "common/log.hh"
#include "common/trace.hh"
#include "formal/trace.hh"
#include "gpu/mem_ctrl.hh"
#include "gpu/warp.hh"
#include "mem/address_map.hh"
#include "mem/functional_mem.hh"
#include "obs/provenance.hh"

namespace sbrp
{

EpochModel::EpochModel(const SystemConfig &cfg, SmServices &sm,
                       StatGroup &stats, FenceSemantics semantics)
    : PersistencyModel(cfg, sm, stats), semantics_(semantics)
{
}

HookResult
EpochModel::persistStore(Warp &warp, const WarpInstr &in,
                         const std::vector<Addr> &lines)
{
    // Unbuffered epoch model: persists simply dirty the L1; ordering is
    // only enforced at barriers. Each line's data is written as soon as
    // the line is allocated so intra-instruction capacity evictions
    // flush real values.
    for (Addr line : lines) {
        L1Cache::Line *l = sm_.l1().probe(line);
        if (!l) {
            L1Cache::Line *victim = sm_.l1().victimFor(line);
            if (victim && victim->dirty) {
                if (victim->isPm)
                    evictPmNow(*victim);
                else
                    sm_.fabric().volatileWriteback(victim->lineAddr,
                                                   sm_.now());
            }
            L1Cache::Eviction ev;
            l = sm_.l1().allocate(line, sm_.now(), &ev);
        } else {
            sm_.l1().lookup(line, sm_.now());
        }
        l->dirty = true;
        l->isPm = true;

        std::uint32_t eff = warp.effActive(in);
        for (std::uint32_t ln = 0; ln < 32; ++ln) {
            if (!(eff & (1u << ln)))
                continue;
            Addr a = warp.effAddr(in, ln);
            if (addr_map::lineBase(a, cfg_.lineBytes) != line)
                continue;
            sm_.mem().write32(a, warp.operand(in, ln));
            if (sm_.trace()) {
                std::uint64_t id = sm_.trace()->recordPersist(
                    warp.thread(ln), warp.block(), a);
                sm_.trace()->notePendingStore(line, id);
            }
        }
    }
    return HookResult::Proceed;
}

std::uint64_t
EpochModel::minOutstanding() const
{
    if (outstanding_.empty())
        return ~0ull;
    return *outstanding_.begin();
}

void
EpochModel::flushPmTracked(Addr line_addr)
{
    std::uint64_t seq = ++flushSeq_;
    outstanding_.insert(seq);
    sm_.l1().invalidate(line_addr);
    ++actr_;
    stats_.stat("flushes").inc();
    // The epoch model has no persist buffer: an op's whole SM-side life
    // is this flush, so issue/admit/flush coincide. Epoch barriers are
    // device-wide, hence the Device scope.
    std::uint64_t op_id = 0;
    if (auto *prov = sm_.provenance()) {
        Cycle issue = sm_.now();
        op_id = prov->beginOp(sm_.smId(), line_addr, Scope::Device,
                              provEpoch_, issue);
        prov->markFlush(op_id, issue);
        if (tb_)
            tb_->flowStart("persist", op_id);
    }
    // Bookkeeping runs whether the persist succeeded or exhausted its
    // retry budget: the terminal fault lives in the fabric's
    // PersistFault record, and a stuck ACTR would deadlock the epoch.
    sm_.fabric().persistWrite(line_addr, sm_.now(),
                              [this, seq, op_id](const PersistResult &) {
        sm_.noteAsyncActivity();
        sbrp_assert(actr_ > 0, "ack with ACTR already zero");
        --actr_;
        outstanding_.erase(seq);
        if (tb_ && op_id != 0)
            tb_->flowEnd("persist", op_id);
        onAck();
    }, op_id);
}

void
EpochModel::flushVolatileTracked(Addr line_addr)
{
    std::uint64_t seq = ++flushSeq_;
    outstanding_.insert(seq);
    sm_.l1().invalidate(line_addr);
    sm_.fabric().volatileFlush(line_addr, sm_.now(), [this, seq]() {
        sm_.noteAsyncActivity();
        outstanding_.erase(seq);
        onAck();
    });
}

std::uint32_t
EpochModel::flushEpoch()
{
    std::uint32_t flushes = 0;
    ++provEpoch_;   // Ordering point: this barrier's flushes (and all
                    // ops until the next barrier) share the new ordinal.
    std::vector<Addr> pm_dirty;
    std::vector<Addr> pm_clean;
    std::vector<Addr> vol_dirty;

    sm_.l1().forEachLine([&](L1Cache::Line &l) {
        if (l.isPm) {
            (l.dirty ? pm_dirty : pm_clean).push_back(l.lineAddr);
        } else if (l.dirty && semantics_ == FenceSemantics::PmAndVolatile) {
            vol_dirty.push_back(l.lineAddr);
        }
    });

    for (Addr a : pm_dirty) {
        flushPmTracked(a);
        ++flushes;
    }
    // Invalidate clean PM lines too: the epoch barrier is the (only)
    // inter-threadblock ordering point, so stale PM data must go.
    for (Addr a : pm_clean)
        sm_.l1().invalidate(a);

    for (Addr a : vol_dirty) {
        flushVolatileTracked(a);
        ++flushes;
    }
    stats_.stat("epoch_barriers").inc();
    return flushes;
}

HookResult
EpochModel::fence(Warp &warp, Scope scope)
{
    (void)scope;   // The epoch barrier is global regardless of scope.
    flushEpoch();
    // Like a __threadfence_system: the warp waits for everything in
    // flight up to this point, not for a global quiesce including
    // flushes other warps add later.
    if (outstanding_.empty())
        return HookResult::Proceed;
    waiters_.push_back(Waiter{warp.slot(), flushSeq_});
    return HookResult::StallComplete;
}

HookResult
EpochModel::oFence(Warp &warp)
{
    // The epoch model has no oFence; kernels built for it must use
    // Fence. Reaching here is an application-generator bug.
    (void)warp;
    sbrp_panic("oFence issued under the epoch model");
}

HookResult
EpochModel::dFence(Warp &warp)
{
    (void)warp;
    sbrp_panic("dFence issued under the epoch model");
}

HookResult
EpochModel::pRel(Warp &warp, std::vector<ReleaseFlag> flags, Scope scope)
{
    (void)warp;
    (void)flags;
    (void)scope;
    sbrp_panic("pRel issued under the epoch model");
}

void
EpochModel::pAcqSuccess(Warp &warp, const WarpInstr &in)
{
    (void)warp;
    (void)in;
    sbrp_panic("pAcq issued under the epoch model");
}

bool
EpochModel::mayEvictPm(Warp &warp, const L1Cache::Line &victim)
{
    // Within an epoch persists may drain in any order.
    (void)warp;
    (void)victim;
    return true;
}

void
EpochModel::evictPmNow(const L1Cache::Line &victim)
{
    flushPmTracked(victim.lineAddr);
}

void
EpochModel::tick(Cycle now)
{
    // Acks drive all state transitions, so the model reports the
    // default DrainState::Idle and its SM may sleep between them.
    (void)now;
}

void
EpochModel::drainAll()
{
    flushEpoch();
}

bool
EpochModel::drained() const
{
    return outstanding_.empty();
}

void
EpochModel::onAck()
{
    std::uint64_t min_seq = minOutstanding();
    std::vector<Waiter> keep;
    for (const Waiter &w : waiters_) {
        if (min_seq > w.barrierSeq)
            sm_.resumeWarp(w.slot);
        else
            keep.push_back(w);
    }
    waiters_ = std::move(keep);
}

} // namespace sbrp
