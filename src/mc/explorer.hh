/**
 * @file
 * Stateless DFS exploration of a litmus pattern's schedule space.
 *
 * The explorer re-executes the whole simulation for every schedule (no
 * state capture — the simulator is deterministic, so a decision prefix
 * reproduces the run exactly) and backtracks over the recorded choice
 * points. Pruning is a conservative DPOR-style conflict check: an
 * alternative at a node is explored only when its transition conflicts
 * with something that actually executed after that node in the last
 * observed run (same line with at least one write, same-SM visible ops
 * whose persist-buffer order matters, or a later touch of a deferred
 * flush's line). Independent transitions commute, so skipping their
 * permutations loses no reachable durable state.
 *
 * Bounds make the search finite and honest: `preemptBound` caps
 * non-default issue picks per schedule, `deferBound`/`deferCycles` cap
 * flush deferrals, `maxSchedules` caps the run count. A verdict is an
 * absence *proof* only when the frontier was exhausted (`complete`);
 * otherwise it is a bounded exploration and reported as such.
 */

#ifndef SBRP_MC_EXPLORER_HH
#define SBRP_MC_EXPLORER_HH

#include <cstdint>
#include <string>

#include "common/config.hh"
#include "formal/litmus.hh"
#include "formal/litmus_corpus.hh"
#include "mc/controller.hh"
#include "mc/schedule.hh"

namespace sbrp
{

/** Exploration bounds. */
struct ExploreLimits
{
    std::uint64_t maxSchedules = 4096;
    std::uint32_t preemptBound = 8;  ///< Non-default issue picks/schedule.
    std::uint32_t deferBound = 1;    ///< Defer decisions per PB entry.
    Cycle deferCycles = 24;          ///< Length of one defer window.
    bool prune = true;               ///< Conflict-based pruning.
};

/** Outcome of exploring one (pattern, model, config) combination. */
struct ExploreResult
{
    std::uint64_t schedulesExplored = 0;
    std::uint64_t alternativesPruned = 0;
    std::uint64_t choicePoints = 0;   ///< Max decision depth observed.
    bool complete = false;            ///< Frontier exhausted within bounds.
    bool hitScheduleBound = false;
    std::uint64_t preemptSkips = 0;   ///< Alternatives skipped by the bound.
    std::uint64_t divergedRuns = 0;   ///< Should stay 0; counted anyway.

    bool violationFound = false;
    /** First violating run, then its minimized schedule + replay. */
    LitmusRun violation;
    McSchedule violatingSchedule;
    std::uint64_t minimizeRuns = 0;
};

/** Is this run a persistency violation under the pattern's judge? */
bool mcRunViolates(const LitmusRun &run);

class McExplorer
{
  public:
    McExplorer(const LitmusPattern &pattern, const SystemConfig &cfg,
               const ExploreLimits &limits);

    /** Runs the DFS; stops at the first violation and minimizes it. */
    ExploreResult explore();

    /** One run driven by `schedule` (tolerant mode), recording the
        complete decision list into *out when non-null. */
    LitmusRun runSchedule(const McSchedule &schedule,
                          McSchedule *out = nullptr) const;

  private:
    struct RunOutcome
    {
        LitmusRun run;
        McSchedule decisions;
        std::vector<McChoiceInfo> info;
        std::vector<McStep> log;
        bool diverged = false;
    };

    RunOutcome execute(const McSchedule &prefix) const;
    McSchedule minimize(const McSchedule &witness, ExploreResult *res) const;

    const LitmusPattern &pattern_;
    SystemConfig cfg_;
    ExploreLimits limits_;
};

} // namespace sbrp

#endif // SBRP_MC_EXPLORER_HH
