/**
 * @file
 * Recorded model-checking schedules and their self-contained JSON
 * replay artifacts.
 *
 * A schedule is the ordered list of decisions taken at the simulator's
 * scheduling choice points (which visible-op warp issued, which
 * eligible persist-buffer flush was deferred). Everything else in the
 * simulator is deterministic, so a schedule pins a run completely: the
 * same decisions re-execute byte-identically (test-enforced).
 *
 * The artifact follows the crashtest replay discipline
 * (src/crashtest/replay.hh): versioned, self-contained — pattern name,
 * model, design and every exploration-relevant config knob ride along
 * with the decisions and the expected outcome — and parsed with an
 * error string instead of exceptions.
 */

#ifndef SBRP_MC_SCHEDULE_HH
#define SBRP_MC_SCHEDULE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"

namespace sbrp
{

enum class McDecisionKind : std::uint8_t
{
    Issue,  ///< Which visible-op warp issued (>= 2 were eligible).
    Flush,  ///< Whether an eligible persist-buffer head flushed now.
};

/** One decision at a scheduling choice point. */
struct McDecision
{
    McDecisionKind kind = McDecisionKind::Issue;
    std::uint32_t sm = 0;

    /** Issue: warp slots of the visible candidates, in the SM's scan
        order, and the index of the one issued (0 = default). */
    std::vector<std::uint32_t> cands;
    std::uint32_t chosen = 0;

    /** Flush: persist-buffer entry id and whether it was deferred
        (false = flushed, the default). */
    std::uint64_t entry = 0;
    bool defer = false;

    bool operator==(const McDecision &) const = default;

    /** The default decision the uncontrolled policy would have made. */
    bool
    isDefault() const
    {
        return kind == McDecisionKind::Issue ? chosen == 0 : !defer;
    }
};

/** A complete recorded schedule: the decision at every choice point. */
struct McSchedule
{
    std::vector<McDecision> decisions;

    std::uint64_t
    nonDefaultCount() const
    {
        std::uint64_t n = 0;
        for (const McDecision &d : decisions)
            n += d.isDefault() ? 0 : 1;
        return n;
    }

    bool operator==(const McSchedule &) const = default;
};

/** Self-contained schedule replay artifact (`mcheck --replay`). */
struct McArtifact
{
    static constexpr std::uint32_t kVersion = 1;

    std::string pattern;
    ModelKind model = ModelKind::Sbrp;
    SystemDesign design = SystemDesign::PmNear;

    // Exploration-relevant config knobs (applied over testDefault).
    std::uint32_t window = 6;
    FlushPolicy policy = FlushPolicy::Window;
    bool preciseFsm = true;
    double nvmBwScale = 1.0;
    bool unsafeRelaxedOrder = false;
    Cycle deferCycles = 24;
    /** Defer decisions allowed per PB entry; replay must honour it
        because it shapes which flush asks become choice points. */
    std::uint32_t deferBound = 1;

    McSchedule schedule;

    // Expected outcome of replaying the schedule.
    std::uint64_t expectViolations = 0;
    bool expectDurableOk = true;
    std::uint64_t expectAuditBreaks = 0;
    Cycle expectCycles = 0;
    std::string expectDigest;   ///< Hex FNV of the durable image.

    /** The SystemConfig the schedule was recorded under. */
    SystemConfig config() const;

    std::string toJson() const;

    /** Parses `text`; returns false and sets *err on malformed or
        version-mismatched input. */
    static bool fromJson(const std::string &text, McArtifact *out,
                         std::string *err);
};

/** 64-bit digest rendered as fixed-width hex (JSON numbers are
    doubles; 2^64 digests do not round-trip as numbers). */
std::string mcDigestString(std::uint64_t digest);

} // namespace sbrp

#endif // SBRP_MC_SCHEDULE_HH
