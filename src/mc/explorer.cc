#include "mc/explorer.hh"

#include <utility>

namespace sbrp
{

namespace
{

/**
 * Would issuing `alt` (instead of what ran) interact with anything that
 * executed after the choice point? Scans the observed suffix up to the
 * point where `alt`'s warp actually issued (steps beyond that already
 * follow it in every reordering). Conflict = same line with at least
 * one write; address-disjoint transitions carry no PMO edge, so their
 * permutations reach the same durable states.
 */
bool
issueAltConflicts(const IssueCandidate &alt, std::uint32_t sm,
                  const std::vector<McStep> &log, std::size_t from)
{
    for (std::size_t i = from; i < log.size(); ++i) {
        const McStep &t = log[i];
        if (t.kind == McDecisionKind::Issue && t.sm == sm &&
                t.slot == alt.slot) {
            break;   // alt's own warp issued: program order from here.
        }
        if (alt.line != 0 && t.line != 0 && alt.line == t.line &&
                (alt.write || t.write)) {
            return true;
        }
    }
    return false;
}

/** Deferring a flush only matters when its line is touched again. */
bool
deferAltConflicts(Addr line, const std::vector<McStep> &log,
                  std::size_t from)
{
    for (std::size_t i = from + 1; i < log.size(); ++i) {
        if (log[i].line == line && line != 0)
            return true;
    }
    return false;
}

std::uint64_t
nonDefaultIssues(const std::vector<McDecision> &ds, std::size_t upto)
{
    std::uint64_t n = 0;
    for (std::size_t i = 0; i < upto && i < ds.size(); ++i) {
        if (ds[i].kind == McDecisionKind::Issue && !ds[i].isDefault())
            ++n;
    }
    return n;
}

} // namespace

bool
mcRunViolates(const LitmusRun &run)
{
    return !run.violations.empty() || !run.durableStateOk ||
           run.auditOrderBreaks != 0;
}

McExplorer::McExplorer(const LitmusPattern &pattern, const SystemConfig &cfg,
                       const ExploreLimits &limits)
    : pattern_(pattern), cfg_(cfg), limits_(limits)
{
}

McExplorer::RunOutcome
McExplorer::execute(const McSchedule &prefix) const
{
    McController ctl(McController::Mode::Explore, prefix,
                     limits_.deferBound, limits_.deferCycles);
    LitmusScenario scen = pattern_.scenario(cfg_.model);
    RunOutcome o;
    o.run = scen.runControlled(cfg_, &ctl);
    o.decisions = ctl.recorded();
    o.info = ctl.info();
    o.log = ctl.log();
    o.diverged = ctl.diverged();
    return o;
}

LitmusRun
McExplorer::runSchedule(const McSchedule &schedule, McSchedule *out) const
{
    McController ctl(McController::Mode::Explore, schedule,
                     limits_.deferBound, limits_.deferCycles);
    LitmusScenario scen = pattern_.scenario(cfg_.model);
    LitmusRun run = scen.runControlled(cfg_, &ctl);
    if (out)
        *out = ctl.recorded();
    return run;
}

ExploreResult
McExplorer::explore()
{
    /** One DFS frame: the decision currently taken at this choice point
        plus the alternatives still to try. */
    struct Node
    {
        McDecision d;
        std::vector<std::uint32_t> untried;  ///< Issue: candidate indices.
        bool untriedDefer = false;
    };

    ExploreResult res;
    std::vector<Node> stack;

    // Appends frames for every choice point the run reached beyond the
    // current stack, computing each frame's viable alternatives from
    // the run actually observed through it.
    const auto extend = [&](const RunOutcome &o) {
        const std::vector<McDecision> &ds = o.decisions.decisions;
        for (std::size_t i = stack.size(); i < ds.size(); ++i) {
            Node n;
            n.d = ds[i];
            const McChoiceInfo &ci = o.info[i];
            if (n.d.kind == McDecisionKind::Issue) {
                bool bounded = nonDefaultIssues(ds, i) >=
                               limits_.preemptBound;
                for (std::uint32_t j = 0; j < ci.options.size(); ++j) {
                    if (j == n.d.chosen)
                        continue;
                    if (bounded) {
                        ++res.preemptSkips;
                    } else if (!limits_.prune ||
                               issueAltConflicts(ci.options[j], ci.sm,
                                                 o.log, ci.stepIndex)) {
                        n.untried.push_back(j);
                    } else {
                        ++res.alternativesPruned;
                    }
                }
            } else if (!n.d.defer) {
                if (!limits_.prune ||
                        deferAltConflicts(ci.line, o.log, ci.stepIndex)) {
                    n.untriedDefer = true;
                } else {
                    ++res.alternativesPruned;
                }
            }
            stack.push_back(std::move(n));
        }
        if (ds.size() > res.choicePoints)
            res.choicePoints = ds.size();
    };

    RunOutcome o = execute(McSchedule{});
    res.schedulesExplored = 1;
    res.divergedRuns += o.diverged ? 1 : 0;
    extend(o);

    while (!mcRunViolates(o.run)) {
        // Backtrack to the deepest frame with an untried alternative.
        bool branched = false;
        while (!stack.empty() && !branched) {
            Node &n = stack.back();
            if (!n.untried.empty()) {
                n.d.chosen = n.untried.back();
                n.untried.pop_back();
                branched = true;
            } else if (n.untriedDefer) {
                n.d.defer = true;
                n.untriedDefer = false;
                branched = true;
            } else {
                stack.pop_back();
            }
        }
        if (!branched) {
            res.complete = res.preemptSkips == 0 && res.divergedRuns == 0;
            return res;
        }
        if (res.schedulesExplored >= limits_.maxSchedules) {
            res.hitScheduleBound = true;
            return res;
        }

        McSchedule prefix;
        for (const Node &n : stack)
            prefix.decisions.push_back(n.d);
        o = execute(prefix);
        ++res.schedulesExplored;
        res.divergedRuns += o.diverged ? 1 : 0;
        extend(o);
    }

    res.violationFound = true;
    res.violation = o.run;
    res.violatingSchedule = minimize(o.decisions, &res);
    return res;
}

McSchedule
McExplorer::minimize(const McSchedule &witness, ExploreResult *res) const
{
    // Greedy delta-debugging: flip each non-default decision back to
    // the default (latest first) and keep the flip whenever the run
    // still violates. Each accepted flip strictly reduces the
    // non-default count, so this terminates.
    McSchedule cur = witness;
    bool improved = true;
    while (improved) {
        improved = false;
        for (std::size_t i = cur.decisions.size(); i-- > 0;) {
            if (cur.decisions[i].isDefault())
                continue;
            McSchedule cand = cur;
            if (cand.decisions[i].kind == McDecisionKind::Issue)
                cand.decisions[i].chosen = 0;
            else
                cand.decisions[i].defer = false;
            McSchedule rec;
            LitmusRun run = runSchedule(cand, &rec);
            ++res->minimizeRuns;
            if (mcRunViolates(run)) {
                cur = std::move(rec);
                res->violation = run;
                improved = true;
                break;
            }
        }
    }
    return cur;
}

} // namespace sbrp
