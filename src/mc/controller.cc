#include "mc/controller.hh"

namespace sbrp
{

McController::McController(Mode mode, McSchedule prefix,
                           std::uint32_t defer_bound, Cycle defer_cycles)
    : mode_(mode), prefix_(std::move(prefix)), deferBound_(defer_bound),
      deferCycles_(defer_cycles)
{
}

bool
McController::diverged() const
{
    if (diverged_)
        return true;
    // Strict replay: the run must consume the prefix exactly.
    return mode_ == Mode::Replay &&
           recorded_.decisions.size() != prefix_.decisions.size();
}

void
McController::markDiverged(const std::string &why)
{
    if (!diverged_) {
        diverged_ = true;
        divergence_ = why;
    }
    prefixAbandoned_ = true;
}

std::size_t
McController::defaultPick(const std::vector<IssueCandidate> &cands) const
{
    for (std::size_t i = 0; i < cands.size(); ++i) {
        if (cands[i].visible)
            return i;
    }
    return 0;
}

void
McController::logIssue(std::uint32_t sm, const IssueCandidate &c)
{
    McStep s;
    s.kind = McDecisionKind::Issue;
    s.sm = sm;
    s.slot = c.slot;
    s.visible = c.visible;
    s.write = c.write;
    s.line = c.line;
    log_.push_back(s);
}

std::size_t
McController::pickIssue(std::uint32_t sm,
                        const std::vector<IssueCandidate> &cands)
{
    std::vector<std::uint32_t> vis;
    for (std::size_t i = 0; i < cands.size(); ++i) {
        if (cands[i].visible)
            vis.push_back(static_cast<std::uint32_t>(i));
    }
    if (vis.size() < 2) {
        // Not a choice point: invisible ops commute, and a lone visible
        // op has no alternative.
        std::size_t pick = defaultPick(cands);
        if (cands[pick].visible)
            logIssue(sm, cands[pick]);
        return pick;
    }

    McDecision d;
    d.kind = McDecisionKind::Issue;
    d.sm = sm;
    for (std::uint32_t i : vis)
        d.cands.push_back(cands[i].slot);

    std::uint32_t chosen = 0;
    if (!prefixAbandoned_ && next_ < prefix_.decisions.size()) {
        const McDecision &p = prefix_.decisions[next_];
        if (p.kind != McDecisionKind::Issue || p.sm != sm ||
                p.cands != d.cands) {
            markDiverged("issue choice point " +
                         std::to_string(recorded_.decisions.size()) +
                         " does not match the recorded schedule");
        } else {
            chosen = p.chosen < vis.size() ? p.chosen : 0;
            ++next_;
        }
    }
    d.chosen = chosen;
    recorded_.decisions.push_back(d);

    McChoiceInfo ci;
    for (std::uint32_t i : vis)
        ci.options.push_back(cands[i]);
    ci.sm = sm;
    ci.stepIndex = log_.size();
    info_.push_back(std::move(ci));

    std::size_t pick = vis[chosen];
    logIssue(sm, cands[pick]);
    return pick;
}

bool
McController::allowFlush(std::uint32_t sm, std::uint64_t entry_id, Addr line,
                         Cycle now)
{
    const auto logFlush = [&]() {
        McStep s;
        s.kind = McDecisionKind::Flush;
        s.sm = sm;
        s.write = true;
        s.line = line;
        log_.push_back(s);
    };

    // Once the kernel enters its final drain there is nothing left to
    // reorder against; deferring would only delay termination.
    if (draining_.count(sm)) {
        logFlush();
        return true;
    }

    const std::pair<std::uint32_t, std::uint64_t> key{sm, entry_id};
    auto until = deferUntil_.find(key);
    if (until != deferUntil_.end() && now < until->second)
        return false;   // Inside a granted defer window; no new decision.
    if (deferCount_[key] >= deferBound_) {
        logFlush();
        return true;    // Defer budget for this entry exhausted.
    }

    McDecision d;
    d.kind = McDecisionKind::Flush;
    d.sm = sm;
    d.entry = entry_id;

    bool defer = false;
    if (!prefixAbandoned_ && next_ < prefix_.decisions.size()) {
        const McDecision &p = prefix_.decisions[next_];
        if (p.kind != McDecisionKind::Flush || p.sm != sm ||
                p.entry != entry_id) {
            markDiverged("flush choice point " +
                         std::to_string(recorded_.decisions.size()) +
                         " does not match the recorded schedule");
        } else {
            defer = p.defer;
            ++next_;
        }
    }
    d.defer = defer;
    recorded_.decisions.push_back(d);

    McChoiceInfo ci;
    ci.sm = sm;
    ci.line = line;
    ci.stepIndex = log_.size();
    info_.push_back(std::move(ci));

    if (defer) {
        deferUntil_[key] = now + deferCycles_;
        ++deferCount_[key];
        return false;
    }
    logFlush();
    return true;
}

void
McController::noteKernelDrain(std::uint32_t sm)
{
    draining_.insert(sm);
}

} // namespace sbrp
