#include "mc/schedule.hh"

#include <cstdio>

#include "common/json.hh"
#include "common/schema_versions.hh"

namespace sbrp
{

namespace
{

bool
fail(std::string *err, const std::string &msg)
{
    if (err)
        *err = msg;
    return false;
}

/** Required numeric field, or error. */
bool
getU64(const JsonValue &obj, const char *key, std::uint64_t *out,
       std::string *err)
{
    const JsonValue *v = obj.find(key);
    if (!v || !v->isNumber())
        return fail(err, std::string("missing or non-numeric field '") +
                             key + "'");
    *out = v->asU64();
    return true;
}

bool
getBool(const JsonValue &obj, const char *key, bool *out, std::string *err)
{
    const JsonValue *v = obj.find(key);
    if (!v || !v->isBool())
        return fail(err, std::string("missing or non-bool field '") + key +
                             "'");
    *out = v->asBool();
    return true;
}

bool
getString(const JsonValue &obj, const char *key, std::string *out,
          std::string *err)
{
    const JsonValue *v = obj.find(key);
    if (!v || !v->isString())
        return fail(err, std::string("missing or non-string field '") + key +
                             "'");
    *out = v->asString();
    return true;
}

JsonValue
decisionToJson(const McDecision &d)
{
    JsonValue j = JsonValue::object();
    j.set("sm", JsonValue(std::uint64_t{d.sm}));
    if (d.kind == McDecisionKind::Issue) {
        j.set("k", JsonValue(std::string("i")));
        JsonValue cands = JsonValue::array();
        for (std::uint32_t slot : d.cands)
            cands.push(JsonValue(std::uint64_t{slot}));
        j.set("cands", std::move(cands));
        j.set("pick", JsonValue(std::uint64_t{d.chosen}));
    } else {
        j.set("k", JsonValue(std::string("f")));
        j.set("entry", JsonValue(d.entry));
        j.set("defer", JsonValue(d.defer));
    }
    return j;
}

bool
decisionFromJson(const JsonValue &j, McDecision *out, std::string *err)
{
    if (!j.isObject())
        return fail(err, "decision is not an object");
    std::string kind;
    if (!getString(j, "k", &kind, err))
        return false;
    std::uint64_t sm = 0;
    if (!getU64(j, "sm", &sm, err))
        return false;
    out->sm = static_cast<std::uint32_t>(sm);
    if (kind == "i") {
        out->kind = McDecisionKind::Issue;
        const JsonValue *cands = j.find("cands");
        if (!cands || !cands->isArray())
            return fail(err, "issue decision lacks 'cands' array");
        out->cands.clear();
        for (const JsonValue &c : cands->items()) {
            if (!c.isNumber())
                return fail(err, "non-numeric candidate slot");
            out->cands.push_back(static_cast<std::uint32_t>(c.asU64()));
        }
        std::uint64_t pick = 0;
        if (!getU64(j, "pick", &pick, err))
            return false;
        if (out->cands.empty() || pick >= out->cands.size())
            return fail(err, "issue pick out of candidate range");
        out->chosen = static_cast<std::uint32_t>(pick);
    } else if (kind == "f") {
        out->kind = McDecisionKind::Flush;
        if (!getU64(j, "entry", &out->entry, err))
            return false;
        if (!getBool(j, "defer", &out->defer, err))
            return false;
    } else {
        return fail(err, "unknown decision kind '" + kind + "'");
    }
    return true;
}

} // namespace

std::string
mcDigestString(std::uint64_t digest)
{
    char buf[2 + 16 + 1];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(digest));
    return buf;
}

SystemConfig
McArtifact::config() const
{
    SystemConfig cfg = SystemConfig::testDefault(model, design);
    cfg.window = window;
    cfg.flushPolicy = policy;
    cfg.preciseFsm = preciseFsm;
    cfg.nvmBwScale = nvmBwScale;
    cfg.unsafeRelaxedPersistOrder = unsafeRelaxedOrder;
    return cfg;
}

std::string
McArtifact::toJson() const
{
    JsonValue j = JsonValue::object();
    j.set("schema_version", JsonValue(std::uint64_t{schema::kMcSchedule}));
    j.set("kind", JsonValue(std::string("mc_schedule")));
    j.set("pattern", JsonValue(pattern));
    j.set("model", JsonValue(std::string(toString(model))));
    j.set("design", JsonValue(std::string(toString(design))));

    JsonValue cfg = JsonValue::object();
    cfg.set("window", JsonValue(std::uint64_t{window}));
    cfg.set("flush_policy", JsonValue(std::string(toString(policy))));
    cfg.set("precise_fsm", JsonValue(preciseFsm));
    cfg.set("nvm_bw_scale", JsonValue(nvmBwScale));
    cfg.set("unsafe_relaxed_order", JsonValue(unsafeRelaxedOrder));
    cfg.set("defer_cycles", JsonValue(deferCycles));
    cfg.set("defer_bound", JsonValue(std::uint64_t{deferBound}));
    j.set("config", std::move(cfg));

    JsonValue decisions = JsonValue::array();
    for (const McDecision &d : schedule.decisions)
        decisions.push(decisionToJson(d));
    j.set("decisions", std::move(decisions));

    JsonValue expect = JsonValue::object();
    expect.set("violations", JsonValue(expectViolations));
    expect.set("durable_ok", JsonValue(expectDurableOk));
    expect.set("audit_breaks", JsonValue(expectAuditBreaks));
    expect.set("cycles", JsonValue(expectCycles));
    expect.set("digest", JsonValue(expectDigest));
    j.set("expect", std::move(expect));

    return j.dump(2) + "\n";
}

bool
McArtifact::fromJson(const std::string &text, McArtifact *out,
                     std::string *err)
{
    std::string perr;
    JsonValue j = JsonValue::parse(text, &perr);
    if (j.isNull())
        return fail(err, "JSON parse error: " + perr);
    if (!j.isObject())
        return fail(err, "artifact is not a JSON object");

    std::uint64_t version = 0;
    if (!getU64(j, "schema_version", &version, err))
        return false;
    if (version != schema::kMcSchedule)
        return fail(err, "unsupported mc_schedule schema_version " +
                             std::to_string(version) + " (expected " +
                             std::to_string(schema::kMcSchedule) + ")");
    std::string kind;
    if (!getString(j, "kind", &kind, err) || kind != "mc_schedule")
        return fail(err, "not an mc_schedule artifact");

    McArtifact a;
    if (!getString(j, "pattern", &a.pattern, err))
        return false;
    std::string model, design;
    if (!getString(j, "model", &model, err) ||
        !getString(j, "design", &design, err))
        return false;
    if (!modelKindFromString(model, &a.model))
        return fail(err, "unknown model '" + model + "'");
    if (!systemDesignFromString(design, &a.design))
        return fail(err, "unknown design '" + design + "'");

    const JsonValue *cfg = j.find("config");
    if (!cfg || !cfg->isObject())
        return fail(err, "missing 'config' object");
    std::uint64_t window = 0;
    if (!getU64(*cfg, "window", &window, err))
        return false;
    a.window = static_cast<std::uint32_t>(window);
    std::string policy;
    if (!getString(*cfg, "flush_policy", &policy, err))
        return false;
    if (!flushPolicyFromString(policy, &a.policy))
        return fail(err, "unknown flush policy '" + policy + "'");
    if (!getBool(*cfg, "precise_fsm", &a.preciseFsm, err))
        return false;
    const JsonValue *bw = cfg->find("nvm_bw_scale");
    if (!bw || !bw->isNumber())
        return fail(err, "missing or non-numeric 'nvm_bw_scale'");
    a.nvmBwScale = bw->asNumber();
    if (!getBool(*cfg, "unsafe_relaxed_order", &a.unsafeRelaxedOrder, err))
        return false;
    if (!getU64(*cfg, "defer_cycles", &a.deferCycles, err))
        return false;
    std::uint64_t defer_bound = 0;
    if (!getU64(*cfg, "defer_bound", &defer_bound, err))
        return false;
    a.deferBound = static_cast<std::uint32_t>(defer_bound);

    const JsonValue *decisions = j.find("decisions");
    if (!decisions || !decisions->isArray())
        return fail(err, "missing 'decisions' array");
    for (const JsonValue &dj : decisions->items()) {
        McDecision d;
        if (!decisionFromJson(dj, &d, err))
            return false;
        a.schedule.decisions.push_back(std::move(d));
    }

    const JsonValue *expect = j.find("expect");
    if (!expect || !expect->isObject())
        return fail(err, "missing 'expect' object");
    if (!getU64(*expect, "violations", &a.expectViolations, err))
        return false;
    if (!getBool(*expect, "durable_ok", &a.expectDurableOk, err))
        return false;
    if (!getU64(*expect, "audit_breaks", &a.expectAuditBreaks, err))
        return false;
    if (!getU64(*expect, "cycles", &a.expectCycles, err))
        return false;
    if (!getString(*expect, "digest", &a.expectDigest, err))
        return false;

    *out = std::move(a);
    return true;
}

} // namespace sbrp
