/**
 * @file
 * McController: the ScheduleController implementation driven by the
 * model checker.
 *
 * It turns the simulator's scheduling hooks into an explicit decision
 * tree. A *choice point* arises when at least two ready warps hold
 * visible operations (stores, atomics, fences, releases — ops that can
 * affect the durable outcome; spins, loads and ALU work commute with
 * everything and are issued by the default policy without recording a
 * decision), or when an eligible persist-buffer flush may legally be
 * deferred. Replaying a recorded decision list re-executes the run
 * byte-identically; running past the list extends it with defaults, so
 * one pass both replays a prefix and records the complete schedule.
 */

#ifndef SBRP_MC_CONTROLLER_HH
#define SBRP_MC_CONTROLLER_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "mc/schedule.hh"
#include "sim/scheduler.hh"

namespace sbrp
{

/** One executed visible transition, for conflict analysis. */
struct McStep
{
    McDecisionKind kind = McDecisionKind::Issue;
    std::uint32_t sm = 0;
    std::uint32_t slot = 0;   ///< Issue steps: the warp that issued.
    bool visible = false;
    bool write = false;
    Addr line = 0;            ///< Footprint line (0 = none).
};

/** Per-decision metadata the explorer needs to enumerate alternatives. */
struct McChoiceInfo
{
    /** Issue nodes: footprints of the visible candidates, aligned with
        McDecision::cands. Empty for flush nodes. */
    std::vector<IssueCandidate> options;
    std::uint32_t sm = 0;
    Addr line = 0;            ///< Flush nodes: the line being flushed.
    std::size_t stepIndex = 0;///< log() position when the node was hit.
};

class McController : public ScheduleController
{
  public:
    enum class Mode
    {
        Explore,  ///< Prefix mismatch abandons the rest of the prefix.
        Replay,   ///< Any mismatch is a divergence (strict).
    };

    McController(Mode mode, McSchedule prefix, std::uint32_t defer_bound,
                 Cycle defer_cycles);

    // --- ScheduleController ---
    std::size_t pickIssue(std::uint32_t sm,
                          const std::vector<IssueCandidate> &cands) override;
    bool allowFlush(std::uint32_t sm, std::uint64_t entry_id, Addr line,
                    Cycle now) override;
    void noteKernelDrain(std::uint32_t sm) override;

    /** The complete decision list of the run (prefix + extensions). */
    const McSchedule &recorded() const { return recorded_; }
    const std::vector<McChoiceInfo> &info() const { return info_; }
    const std::vector<McStep> &log() const { return log_; }

    /** Replay health: set on any prefix mismatch, plus (Replay mode)
        when the run has more or fewer choice points than the prefix. */
    bool diverged() const;
    const std::string &divergence() const { return divergence_; }

  private:
    std::size_t defaultPick(const std::vector<IssueCandidate> &cands) const;
    void markDiverged(const std::string &why);
    void logIssue(std::uint32_t sm, const IssueCandidate &c);

    Mode mode_;
    McSchedule prefix_;
    std::size_t next_ = 0;          ///< Next unconsumed prefix decision.
    bool prefixAbandoned_ = false;
    std::uint32_t deferBound_;
    Cycle deferCycles_;

    McSchedule recorded_;
    std::vector<McChoiceInfo> info_;
    std::vector<McStep> log_;

    /** Sticky defer windows, keyed by (sm, entry id). */
    std::map<std::pair<std::uint32_t, std::uint64_t>, Cycle> deferUntil_;
    std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint32_t>
        deferCount_;
    std::set<std::uint32_t> draining_;

    bool diverged_ = false;
    std::string divergence_;
};

} // namespace sbrp

#endif // SBRP_MC_CONTROLLER_HH
